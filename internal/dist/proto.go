// Package dist fans internal/expt campaigns out across processes and
// machines: a Coordinator owns the job grid (embedded in cmd/sweep or
// cmd/chaos under -exec=net) and a fleet of stateless Workers
// (cmd/worker) pulls leases from it over a small versioned JSON-over-HTTP
// protocol. The coordinator reuses the local Pool for everything except
// execution — dedup by content hash, manifest resume, bounded
// retry/backoff, progress events — so the cornucopia-sweep/v1 and
// cornucopia-chaos/v1 documents a distributed campaign produces are
// byte-identical (after Document.Canonicalize strips host-execution
// metadata) to a single-process run of the same grid.
//
// Protocol (cornucopia-dist/v1), all POST, JSON request and reply:
//
//	/dist/v1/hello      worker announces its protocol version and
//	                    kernel/engine capabilities; the coordinator
//	                    validates compatibility (the same class of
//	                    up-front check the manifest grid header performs)
//	                    and replies with the campaign's tool/grid
//	                    signature, the kernel, engine and telemetry
//	                    configuration every job must run under, and the
//	                    heartbeat interval.
//	/dist/v1/lease      worker asks for a job; the reply is one of
//	                    "job" (a leased expt.Job plus its key),
//	                    "wait" (nothing runnable right now; poll again
//	                    after wait_ms), or "drain" (campaign complete;
//	                    exit).
//	/dist/v1/heartbeat  worker renews a lease; a not-OK reply means the
//	                    lease was reclaimed and the result will be
//	                    discarded.
//	/dist/v1/result     worker reports the job's JobResult (or its
//	                    error, pre-classified by expt.ErrClass on the
//	                    coordinator side) and the host milliseconds the
//	                    run took on the worker.
//
// Workers that vanish mid-lease are detected by heartbeat timeout; the
// coordinator reclaims the lease and the pool's retry machinery re-issues
// the job (with backoff) to the next worker that asks — mirroring the
// revoke layer's abort-and-retry recovery, but at campaign granularity.
package dist

import "repro/internal/expt"

// Proto is the wire-protocol version. Hello requests carrying any other
// value are rejected: job descriptions and results are structural JSON,
// so mixing coordinator and worker builds across a schema change would
// corrupt campaigns silently.
const Proto = "cornucopia-dist/v1"

// Paths of the protocol endpoints.
const (
	PathHello     = "/dist/v1/hello"
	PathLease     = "/dist/v1/lease"
	PathHeartbeat = "/dist/v1/heartbeat"
	PathResult    = "/dist/v1/result"
)

// Hello is the worker's opening announcement.
type Hello struct {
	Proto string `json:"proto"`
	// Name labels the worker in progress output and telemetry ("host:pid"
	// by default); uniqueness is provided by the coordinator-assigned id.
	Name string `json:"name"`
	// SweepKernels and SimEngines list the implementations this worker
	// build supports, by their flag names. The coordinator refuses
	// workers that cannot run the campaign's configured pair.
	SweepKernels []string `json:"sweep_kernels"`
	SimEngines   []string `json:"sim_engines"`
	// MemPaths lists the memory-model representations the worker supports
	// (cornucopia-dist/v1 extension). An old worker omits the field and is
	// assumed to support only the default fast path; the coordinator
	// refuses it only when the campaign demands another path.
	MemPaths []string `json:"mem_paths,omitempty"`
}

// TelemetryOptions mirrors telemetry.Options on the wire. TraceEvents
// is a backwards-compatible cornucopia-dist/v1 extension: an old worker
// ignores the field and simply ships untraced snapshots, while a new
// worker against an old coordinator sees the zero value (tracing off).
type TelemetryOptions struct {
	SampleEvery uint64 `json:"sample_every,omitempty"`
	MaxRows     int    `json:"max_rows,omitempty"`
	TraceEvents int    `json:"trace_events,omitempty"`
}

// HelloReply accepts or rejects a worker.
type HelloReply struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
	// WorkerID is the coordinator-assigned identity the worker presents
	// on every subsequent request.
	WorkerID string `json:"worker_id,omitempty"`
	// Tool and Grid identify the campaign, exactly as the manifest
	// header records them.
	Tool string `json:"tool,omitempty"`
	Grid string `json:"grid,omitempty"`
	// SweepKernel and SimEngine are the implementations every leased job
	// must run under; Telemetry, when non-nil, arms per-job recording so
	// snapshots ride back inside the JobResult.
	SweepKernel string `json:"sweep_kernel,omitempty"`
	SimEngine   string `json:"sim_engine,omitempty"`
	// MemPath is the memory-model representation every leased job must run
	// under (cornucopia-dist/v1 extension; empty = fast). Old workers
	// ignore it, which is benign: paths are simulated-identical.
	MemPath   string            `json:"mem_path,omitempty"`
	Telemetry *TelemetryOptions `json:"telemetry,omitempty"`
	// HeartbeatMS is how often the worker must renew each held lease.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
}

// LeaseRequest asks for one job.
type LeaseRequest struct {
	WorkerID string `json:"worker_id"`
}

// Lease reply statuses.
const (
	StatusJob   = "job"
	StatusWait  = "wait"
	StatusDrain = "drain"
)

// LeaseReply grants a job, asks the worker to poll again, or drains it.
type LeaseReply struct {
	Status string `json:"status"`
	// WaitMS is the suggested poll delay on StatusWait.
	WaitMS int64 `json:"wait_ms,omitempty"`
	// LeaseID names the lease on heartbeat/result; Key is the job's
	// content hash, which the worker re-derives from Job and verifies
	// before running — a mismatch means coordinator and worker disagree
	// on the job schema and the result would be unusable.
	LeaseID string    `json:"lease_id,omitempty"`
	Key     string    `json:"key,omitempty"`
	Job     *expt.Job `json:"job,omitempty"`
}

// HeartbeatRequest renews a lease.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
	LeaseID  string `json:"lease_id"`
}

// HeartbeatReply acknowledges a renewal; OK=false means the lease is no
// longer held (reclaimed or already resolved) and the run's result will
// be discarded.
type HeartbeatReply struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}

// ResultRequest reports a finished lease: exactly one of Result (success)
// or Err (failure; the text preserves "panic: …" and "timed out"
// prefixes so expt.ErrClass classifies it like a local failure) is set.
// HostMS is the worker-side wall clock of the run itself, excluding queue
// and transport, recorded in the manifest as host_ms.
type ResultRequest struct {
	WorkerID string          `json:"worker_id"`
	LeaseID  string          `json:"lease_id"`
	Key      string          `json:"key"`
	HostMS   float64         `json:"host_ms"`
	Err      string          `json:"err,omitempty"`
	Result   *expt.JobResult `json:"result,omitempty"`
	// Cached marks a result replayed from the worker's local result cache
	// (its manifest) instead of being re-executed: a rejoining worker
	// serves its completed keys instantly. HostMS then reports the
	// original run's cost, exactly as a pool manifest hit does.
	Cached bool `json:"cached,omitempty"`
}

// ResultReply acknowledges a result; OK=false (expired lease, unknown
// worker) means the result was discarded — the worker just moves on.
type ResultReply struct {
	OK     bool   `json:"ok"`
	Reason string `json:"reason,omitempty"`
}
