package dist

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// obsGrid returns the campaign description both observability runs share;
// the journal header pins it, exactly as a manifest header would.
const obsGrid = "obs-test trace-events=32"

func obsTelemetry() *telemetry.Options {
	return &telemetry.Options{SampleEvery: 1 << 20, TraceEvents: 32}
}

// runObsCampaign drives realGrid to completion on ex, closes the journal,
// and returns the canonicalized journal and timeline bytes.
func runObsCampaign(t *testing.T, ex expt.Executor, jnl *journal.Writer, path string) (jbytes, tbytes []byte) {
	t.Helper()
	jobs := realGrid()
	ex.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := ex.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	if err := jnl.Err(); err != nil {
		t.Fatalf("journal write error: %v", err)
	}
	if err := jnl.Close(); err != nil {
		t.Fatal(err)
	}
	j, err := journal.Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Validate(); err != nil {
		t.Fatalf("journal %s invalid: %v", path, err)
	}
	var jb bytes.Buffer
	if err := j.WriteCanonical(&jb); err != nil {
		t.Fatal(err)
	}

	// Timeline rows, attributed the way cliflags.TimelineJobs does it (the
	// helper lives above dist in the import DAG, so rebuild it here).
	var workers map[string]string
	if wm, ok := ex.(interface{ JobWorkers() map[string]string }); ok {
		workers = wm.JobWorkers()
	}
	var rows []journal.TimelineJob
	for _, c := range ex.Results() {
		r := c.Result
		tj := journal.TimelineJob{
			Key: c.Key, Workload: r.Workload, Condition: r.Condition, Seed: r.Seed,
			Worker: workers[c.Key],
			HostMS: float64(c.Host) / float64(time.Millisecond),
			WallCycles: r.WallCycles, HzGHz: r.HzGHz,
		}
		if r.Telem != nil {
			tj.Trace = r.Telem.Trace
			tj.TraceDropped = r.Telem.TraceDropped
		}
		rows = append(rows, tj)
	}
	var tb bytes.Buffer
	if err := journal.WriteTimeline(&tb, rows, true); err != nil {
		t.Fatal(err)
	}
	return jb.Bytes(), tb.Bytes()
}

// TestObsByteIdentical is the observability acceptance test: the same
// seeded grid run on a local pool and distributed across a four-worker
// fleet must produce byte-identical canonical journals and canonical
// timelines — the host-side history differs (leases, worker attribution,
// wall clock), the simulated content must not.
func TestObsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation campaign; skipped in -short")
	}
	dir := t.TempDir()

	localPath := filepath.Join(dir, "local.jsonl")
	jnlLocal, err := journal.Create(localPath, "sweep", obsGrid)
	if err != nil {
		t.Fatal(err)
	}
	local := expt.NewPool(expt.PoolConfig{
		Workers: 2, Journal: jnlLocal, Telemetry: obsTelemetry(),
	})
	wantJ, wantT := runObsCampaign(t, local, jnlLocal, localPath)

	distPath := filepath.Join(dir, "dist.jsonl")
	jnlDist, err := journal.Create(distPath, "sweep", obsGrid)
	if err != nil {
		t.Fatal(err)
	}
	c := startCoordinator(t, Config{
		Grid: obsGrid,
		Pool: expt.PoolConfig{
			Workers: 4, Retries: 2, Journal: jnlDist, Telemetry: obsTelemetry(),
		},
	})
	var dones []<-chan error
	for i := 0; i < 4; i++ {
		_, done := startWorker(t, c, WorkerConfig{Name: fmt.Sprintf("w%d", i)}, nil)
		dones = append(dones, done)
	}
	gotJ, gotT := runObsCampaign(t, c, jnlDist, distPath)
	c.Drain()
	for _, done := range dones {
		waitWorker(t, done, nil)
	}

	if !bytes.Equal(gotJ, wantJ) {
		t.Errorf("canonical journal differs between local and distributed runs:\nlocal:\n%s\ndist:\n%s", wantJ, gotJ)
	}
	if !bytes.Equal(gotT, wantT) {
		t.Errorf("canonical timeline differs between local and distributed runs:\nlocal:\n%s\ndist:\n%s", wantT, gotT)
	}

	// The raw (non-canonical) distributed journal must carry the fleet
	// history the canonical form strips: joins, leases, worker reports.
	j, err := journal.Read(distPath)
	if err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range j.Events {
		kinds[ev.Kind]++
	}
	for _, want := range []string{
		journal.KindWorkerJoin, journal.KindJobLease, journal.KindJobReport,
		journal.KindJobSubmit, journal.KindJobResult,
	} {
		if kinds[want] == 0 {
			t.Errorf("distributed journal has no %s events (kinds: %v)", want, kinds)
		}
	}

	// Fleet accounting saw every worker and every job.
	fs := c.Fleet()
	if len(fs.Workers) != 4 {
		t.Fatalf("fleet rows = %d, want 4 (%+v)", len(fs.Workers), fs.Workers)
	}
	if int(fs.Jobs) != len(realGrid()) {
		t.Errorf("fleet jobs = %d, want %d", fs.Jobs, len(realGrid()))
	}
	if fs.SimCycles == 0 || fs.TraceEvents == 0 {
		t.Errorf("fleet aggregates empty: %+v", fs)
	}
}
