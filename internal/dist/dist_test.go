package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/expt"
	"repro/internal/harness"
)

// testJob builds a distinct, cheap-to-hash job for protocol-mechanics
// tests; the workload is never instantiated when workers run injected
// fakes.
func testJob(name string, seed int64) expt.Job {
	cfg := harness.DefaultConfig()
	cfg.Seed = seed
	return expt.Job{
		Workload: expt.SpecWorkload(name),
		Cond:     harness.Condition{Name: "Reloaded"},
		Cfg:      cfg,
	}
}

// testResult is deterministic per job, so any worker computes the same
// answer — the property real jobs have.
func testResult(j expt.Job) *expt.JobResult {
	return &expt.JobResult{
		Workload:   j.Workload.Name,
		Condition:  j.Cond.Name,
		Seed:       j.Cfg.Seed,
		WallCycles: uint64(j.Cfg.Seed) * 100,
		HzGHz:      1.2,
	}
}

// startCoordinator builds and starts a coordinator on an ephemeral port.
func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Tool == "" {
		cfg.Tool = "sweep"
	}
	if cfg.Grid == "" {
		cfg.Grid = "dist-test"
	}
	c := NewCoordinator(cfg)
	if _, err := c.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

// startWorker runs a worker against c with an injected run function,
// returning a channel that yields Run's error.
func startWorker(t *testing.T, c *Coordinator, wcfg WorkerConfig, run func(expt.Job) (*expt.JobResult, error)) (*Worker, <-chan error) {
	t.Helper()
	wcfg.Connect = c.Addr()
	if wcfg.HelloTimeout == 0 {
		wcfg.HelloTimeout = 5 * time.Second
	}
	w := NewWorker(wcfg)
	if run != nil {
		w.SetRun(run)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run() }()
	return w, done
}

func waitWorker(t *testing.T, done <-chan error, want error) {
	t.Helper()
	select {
	case err := <-done:
		if want == nil && err != nil {
			t.Fatalf("worker exited with %v", err)
		}
		if want != nil && err != want {
			t.Fatalf("worker exited with %v, want %v", err, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after drain")
	}
}

// TestDistRunsJobsThroughWorkers is the basic happy path: a fleet of two
// workers drains a grid, the coordinator's pool dedupes and aggregates
// exactly as a local run would, and per-worker accounting balances.
func TestDistRunsJobsThroughWorkers(t *testing.T) {
	c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 4}})
	var runs atomic.Int64
	run := func(j expt.Job) (*expt.JobResult, error) {
		runs.Add(1)
		return testResult(j), nil
	}
	_, done1 := startWorker(t, c, WorkerConfig{Name: "alpha"}, run)
	_, done2 := startWorker(t, c, WorkerConfig{Name: "beta", Parallel: 2}, run)

	jobs := make([]expt.Job, 0, 6)
	for seed := int64(1); seed <= 6; seed++ {
		jobs = append(jobs, testJob("astar", seed))
	}
	c.Prefetch(jobs)
	c.Prefetch(jobs) // duplicate submission must dedupe, not re-lease
	for _, j := range jobs {
		r, err := c.Get(j)
		if err != nil {
			t.Fatal(err)
		}
		if r.Seed != j.Cfg.Seed || r.WallCycles != uint64(j.Cfg.Seed)*100 {
			t.Fatalf("job seed %d came back as seed %d", j.Cfg.Seed, r.Seed)
		}
	}
	c.Drain()
	waitWorker(t, done1, nil)
	waitWorker(t, done2, nil)

	if got := runs.Load(); got != 6 {
		t.Fatalf("workers ran %d jobs, want 6 (dedup must hold across the wire)", got)
	}
	st := c.Stats()
	// 6 distinct jobs; the second Prefetch and the six Gets are all dups.
	if st.Submitted != 6 || st.Executed != 6 || st.Deduped != 12 || st.Failed != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if rs := c.Results(); len(rs) != 6 {
		t.Fatalf("Results returned %d jobs", len(rs))
	}
	var leases, results uint64
	for _, w := range c.Workers() {
		if w.Inflight != 0 {
			t.Fatalf("worker %s still holds %d leases after drain", w.ID, w.Inflight)
		}
		if w.Failures != 0 || w.Reclaims != 0 {
			t.Fatalf("worker %s recorded failures/reclaims: %+v", w.ID, w)
		}
		leases += w.Leases
		results += w.Results
	}
	if leases != 6 || results != 6 {
		t.Fatalf("fleet accounting: %d leases, %d results, want 6/6", leases, results)
	}
}

// TestDistHostCostIsWorkerReported pins that host_ms in the coordinator's
// records is the worker's run measurement, not queue-inclusive wall time:
// a job that waits minutes for a free worker must not book those minutes.
func TestDistHostCostIsWorkerReported(t *testing.T) {
	c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1}})
	_, done := startWorker(t, c, WorkerConfig{Name: "timed"}, func(j expt.Job) (*expt.JobResult, error) {
		time.Sleep(50 * time.Millisecond)
		return testResult(j), nil
	})
	if _, err := c.Get(testJob("astar", 1)); err != nil {
		t.Fatal(err)
	}
	c.Drain()
	waitWorker(t, done, nil)
	rs := c.Results()
	if len(rs) != 1 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Host < 40*time.Millisecond || rs[0].Host > 5*time.Second {
		t.Fatalf("recorded host cost %v; want the worker's ~50ms measurement", rs[0].Host)
	}
}

// TestDistWorkerCrashMidLease kills a worker after it takes its first
// lease (no result, no heartbeats — a vanished process). The coordinator
// must reclaim the lease by heartbeat timeout, classify it as a timeout,
// and re-issue the job to the surviving worker; the campaign completes
// with every result intact.
func TestDistWorkerCrashMidLease(t *testing.T) {
	var mu sync.Mutex
	var events []expt.Event
	c := startCoordinator(t, Config{
		Heartbeat:     20 * time.Millisecond,
		HeartbeatMiss: 2,
		WaitMS:        10,
		Pool: expt.PoolConfig{
			Workers: 1, // one lease at a time: the crasher reliably gets the first
			Retries: 2,
			Progress: func(ev expt.Event) {
				mu.Lock()
				events = append(events, ev)
				mu.Unlock()
			},
		},
	})
	_, crashDone := startWorker(t, c, WorkerConfig{Name: "crasher", CrashAfterLease: 1}, nil)

	jobs := []expt.Job{testJob("astar", 1), testJob("astar", 2), testJob("astar", 3)}
	c.Prefetch(jobs)

	// Hold the survivor back until the crasher has died holding its lease,
	// so the reclaim path is guaranteed to be exercised.
	waitWorker(t, crashDone, ErrCrashed)
	_, done := startWorker(t, c, WorkerConfig{Name: "survivor"}, func(j expt.Job) (*expt.JobResult, error) {
		return testResult(j), nil
	})
	for _, j := range jobs {
		if _, err := c.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	c.Drain()
	waitWorker(t, done, nil)

	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("no retries recorded; the reclaimed lease should have retried (stats %+v)", st)
	}
	mu.Lock()
	defer mu.Unlock()
	var sawTimeout bool
	for _, ev := range events {
		if ev.Status == "retry" && ev.Err == "timeout" {
			sawTimeout = true
		}
	}
	if !sawTimeout {
		t.Fatalf("no retry event classified as timeout; events: %+v", events)
	}
	var reclaims uint64
	for _, w := range c.Workers() {
		reclaims += w.Reclaims
	}
	if reclaims == 0 {
		t.Fatal("no lease reclaim recorded in worker accounting")
	}
}

// TestDistErrClassNetworkPaths pins expt.ErrClass over the distributed
// failure modes: a worker panic must classify as a panic (not a generic
// error), a lease outliving LeaseTimeout as a timeout, and a worker that
// can never reach the coordinator must say so.
func TestDistErrClassNetworkPaths(t *testing.T) {
	t.Run("worker panic", func(t *testing.T) {
		c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1}})
		_, done := startWorker(t, c, WorkerConfig{Name: "panicky"}, func(j expt.Job) (*expt.JobResult, error) {
			panic("tag map corrupted")
		})
		_, err := c.Get(testJob("astar", 1))
		if err == nil {
			t.Fatal("want error from panicking worker")
		}
		if cls := expt.ErrClass(err); !strings.HasPrefix(cls, "panic: ") || !strings.Contains(cls, "tag map corrupted") {
			t.Fatalf("ErrClass = %q, want worker panic surfaced", cls)
		}
		c.Drain()
		waitWorker(t, done, nil)
	})

	t.Run("lease timeout", func(t *testing.T) {
		c := startCoordinator(t, Config{
			LeaseTimeout: 40 * time.Millisecond,
			Heartbeat:    10 * time.Millisecond,
			Pool:         expt.PoolConfig{Workers: 1},
		})
		_, done := startWorker(t, c, WorkerConfig{Name: "wedged"}, func(j expt.Job) (*expt.JobResult, error) {
			time.Sleep(2 * time.Second) // heartbeats keep flowing; only LeaseTimeout can fire
			return testResult(j), nil
		})
		_, err := c.Get(testJob("astar", 1))
		if err == nil {
			t.Fatal("want error from expired lease")
		}
		if cls := expt.ErrClass(err); cls != "timeout" {
			t.Fatalf("ErrClass = %q, want timeout", cls)
		}
		c.Drain()
		waitWorker(t, done, nil)
	})

	t.Run("connection refused", func(t *testing.T) {
		w := NewWorker(WorkerConfig{
			Connect:      "127.0.0.1:1", // reserved port; nothing listens
			HelloTimeout: 50 * time.Millisecond,
		})
		err := w.Run()
		if err == nil {
			t.Fatal("want connection error")
		}
		if cls := expt.ErrClass(err); !strings.HasPrefix(cls, "error: ") || !strings.Contains(err.Error(), "unreachable") {
			t.Fatalf("ErrClass = %q (err %v), want a plain error naming the unreachable coordinator", cls, err)
		}
	})
}

// TestDistHelloValidation pins the up-front compatibility checks: wrong
// protocol versions and capability-poor workers are refused before they
// can lease anything.
func TestDistHelloValidation(t *testing.T) {
	c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1}})
	post := func(h Hello) HelloReply {
		t.Helper()
		body, _ := json.Marshal(h)
		resp, err := http.Post("http://"+c.Addr()+PathHello, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rep HelloReply
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	full := Hello{
		Proto:        Proto,
		SweepKernels: []string{"word", "granule"},
		SimEngines:   []string{"fast", "classic"},
	}

	bad := full
	bad.Proto = "cornucopia-dist/v0"
	if rep := post(bad); rep.OK || !strings.Contains(rep.Reason, "protocol mismatch") {
		t.Fatalf("v0 hello accepted: %+v", rep)
	}

	bad = full
	bad.SweepKernels = []string{"granule"} // campaign default is word
	if rep := post(bad); rep.OK || !strings.Contains(rep.Reason, "sweep kernel") {
		t.Fatalf("kernel-incapable hello accepted: %+v", rep)
	}

	bad = full
	bad.SimEngines = []string{"classic"}
	if rep := post(bad); rep.OK || !strings.Contains(rep.Reason, "sim engine") {
		t.Fatalf("engine-incapable hello accepted: %+v", rep)
	}

	if rep := post(full); !rep.OK || rep.WorkerID == "" || rep.HeartbeatMS <= 0 {
		t.Fatalf("capable hello refused: %+v", rep)
	}

	// Leasing without a hello is a protocol violation, answered with 409.
	body, _ := json.Marshal(LeaseRequest{WorkerID: "w999"})
	resp, err := http.Post("http://"+c.Addr()+PathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("lease without hello answered %s, want 409", resp.Status)
	}
}

// TestDistKeyVerification pins the schema-skew guard: a worker that
// derives a different key than the lease advertises must refuse to run
// the job.
func TestDistKeyVerification(t *testing.T) {
	c := startCoordinator(t, Config{Pool: expt.PoolConfig{Workers: 1, Retries: 0}})
	w := NewWorker(WorkerConfig{Connect: c.Addr(), HelloTimeout: 5 * time.Second})
	if err := w.hello(); err != nil {
		t.Fatal(err)
	}
	j := testJob("astar", 7)
	type leaseRes struct {
		res *expt.JobResult
		err error
	}
	got := make(chan leaseRes, 1)
	go func() {
		r, err := c.Get(j)
		got <- leaseRes{r, err}
	}()
	var rep LeaseReply
	for {
		if err := w.post(PathLease, LeaseRequest{WorkerID: w.id}, &rep); err != nil {
			t.Fatal(err)
		}
		if rep.Status == StatusJob {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	rep.Key = strings.Repeat("f", 64) // simulate disagreement about the job's identity
	w.execute(rep)
	out := <-got
	if out.err == nil {
		t.Fatal("key mismatch must fail the attempt")
	}
	if !strings.Contains(out.err.Error(), "schema skew") {
		t.Fatalf("err = %v, want schema-skew refusal", out.err)
	}
}

// realGrid is a tiny but genuinely-simulated campaign: one cheap chaos
// workload under baseline and one revocation condition, two seeds each.
func realGrid() []expt.Job {
	conds := []harness.Condition{harness.Baseline(), harness.StandardConditions()[0]}
	cfg := harness.DefaultConfig()
	var jobs []expt.Job
	for _, cond := range conds {
		for _, seed := range []int64{42, 43} {
			c := cfg
			c.Seed = seed
			jobs = append(jobs, expt.Job{Workload: expt.ChaosWorkload(120), Cond: cond, Cfg: c})
		}
	}
	return jobs
}

// runRealCampaign executes the grid on the given executor and returns the
// canonicalized document bytes.
func runRealCampaign(t *testing.T, ex expt.Executor, workers int) []byte {
	t.Helper()
	jobs := realGrid()
	ex.Prefetch(jobs)
	for _, j := range jobs {
		if _, err := ex.Get(j); err != nil {
			t.Fatal(err)
		}
	}
	doc := expt.BuildDocument(ex, nil, workers, 2, 1)
	doc.Canonicalize()
	doc.Workers = 0 // invocation shape differs across the compared runs by design
	var b bytes.Buffer
	if err := doc.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestDistDocumentsByteIdentical is the tentpole acceptance test: the
// same grid run locally, through one network worker, and through four
// network workers (plus one that crashes mid-lease) must produce
// byte-identical canonical documents.
func TestDistDocumentsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulation campaign; skipped in -short")
	}
	local := expt.NewPool(expt.PoolConfig{Workers: 2})
	want := runRealCampaign(t, local, 2)

	for _, tc := range []struct {
		name    string
		fleet   int
		crasher bool
	}{
		{"one worker", 1, false},
		{"four workers", 4, false},
		{"crash mid-lease", 2, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Pool: expt.PoolConfig{Workers: 2, Retries: 2}}
			if tc.crasher {
				cfg.Heartbeat = 20 * time.Millisecond
				cfg.HeartbeatMiss = 2
				cfg.WaitMS = 10
			}
			c := startCoordinator(t, cfg)
			var dones []<-chan error
			if tc.crasher {
				// Queue the grid, then let the crasher take the first lease
				// and die before the real workers join, forcing at least one
				// reclaim + re-run.
				c.Prefetch(realGrid())
				_, crashDone := startWorker(t, c, WorkerConfig{Name: "crasher", CrashAfterLease: 1}, nil)
				waitWorker(t, crashDone, ErrCrashed)
			}
			for i := 0; i < tc.fleet; i++ {
				_, done := startWorker(t, c, WorkerConfig{Name: fmt.Sprintf("w%d", i)}, nil)
				dones = append(dones, done)
			}
			got := runRealCampaign(t, c, 2)
			c.Drain()
			for _, done := range dones {
				waitWorker(t, done, nil)
			}
			if tc.crasher {
				if st := c.Stats(); st.Retries == 0 {
					t.Fatalf("crash variant recorded no retries (stats %+v)", st)
				}
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("distributed document differs from local run:\nlocal:\n%s\ndist:\n%s", want, got)
			}
		})
	}
}
