// Package netfault implements deterministic, seed-driven network fault
// injection for distributed campaigns (internal/dist). It is the transport
// twin of internal/fault: where that package attacks the simulated
// revocation protocol, this one attacks the cornucopia-dist/v1 wire — the
// coordinator/worker HTTP paths that fan a campaign across machines — so
// the fleet's degraded-mode machinery (lease reclaim, retry/backoff,
// circuit breakers, result caching, local fallback) is proven against the
// failure classes production networks actually exhibit.
//
// Decisions mirror internal/fault's splitmix style: each injection
// opportunity hashes (seed, class, per-class opportunity counter), so the
// decision stream per class is a pure function of the Spec — the same
// spec replays the same hit/miss sequence on any host. (Unlike the
// simulator's injector there is no virtual clock to key on; wall-clock
// interleaving of concurrent requests can vary, but which opportunities
// fire cannot.)
//
// Seven classes cover the distributed failure surface:
//
//	drop       request vanishes before reaching the peer (link loss)
//	delay      request held for Spec.Delay before sending (slow link)
//	duplicate  request delivered twice; the duplicate's reply discarded
//	           (retransmit storms — exercises protocol idempotency)
//	reorder    request held until a later request overtakes it
//	reset      request delivered, reply torn away with a connection-reset
//	           error (mid-flight RST — side effects land, caller must
//	           survive not knowing)
//	throttle   every request slowed by Spec.Delay (a slow worker)
//	partition  coordinator refuses a deterministic subset of workers'
//	           requests (split brain; heals when MaxPerClass is spent)
//
// Transport injects the first six on a worker's outgoing requests;
// Handler injects drop, delay and partition on the coordinator's inbound
// side, where worker identity is known.
package netfault

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Class enumerates the injectable network fault classes.
type Class int

const (
	// Drop loses the request before it reaches the peer.
	Drop Class = iota
	// Delay holds the request for Spec.Delay before sending.
	Delay
	// Duplicate sends the request twice, keeping the second reply.
	Duplicate
	// Reorder holds the request until a later one overtakes it.
	Reorder
	// Reset delivers the request but tears the reply away with a
	// connection-reset error.
	Reset
	// Throttle slows every selected request by Spec.Delay (slow worker).
	Throttle
	// Partition makes the coordinator refuse a subset of workers.
	Partition
	// NumClasses bounds the enum.
	NumClasses
)

// String returns the class's kebab-case campaign name.
func (c Class) String() string {
	switch c {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Reset:
		return "reset"
	case Throttle:
		return "throttle"
	case Partition:
		return "partition"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass resolves a campaign name back to its class.
func ParseClass(name string) (Class, error) {
	for c := Class(0); c < NumClasses; c++ {
		if strings.ToLower(strings.TrimSpace(name)) == c.String() {
			return c, nil
		}
	}
	return 0, fmt.Errorf("netfault: unknown class %q", name)
}

// Classes lists every class in declaration order.
func Classes() []Class {
	out := make([]Class, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		out[c] = c
	}
	return out
}

// ClassNames lists every class's campaign name in declaration order.
func ClassNames() []string {
	out := make([]string, NumClasses)
	for c := Class(0); c < NumClasses; c++ {
		out[c] = c.String()
	}
	return out
}

// Spec configures one injector. Like fault.Spec it is plain data, so a
// campaign scenario is fully described by (worker spec, coordinator spec).
type Spec struct {
	// Seed keys the injector's decision stream.
	Seed int64 `json:"seed"`
	// Classes arms the named classes; empty arms all of them. "all" is
	// accepted as a single element.
	Classes []string `json:"classes,omitempty"`
	// Rate is the per-opportunity injection probability in (0, 1]; zero
	// means 1 (every opportunity fires).
	Rate float64 `json:"rate,omitempty"`
	// MaxPerClass caps injections per class (0 = unbounded). A bounded
	// partition heals itself: once spent, the subset rejoins the fleet.
	MaxPerClass uint64 `json:"max_per_class,omitempty"`
	// Delay shapes the time-based faults (delay, reorder hold, throttle).
	// Zero means 5ms.
	Delay time.Duration `json:"delay,omitempty"`
	// PartitionFrac is the fraction of workers in the partitioned subset,
	// selected deterministically by hashing each worker id against Seed.
	// Zero means 0.5.
	PartitionFrac float64 `json:"partition_frac,omitempty"`
}

// Report summarizes one injector's activity, shaped after fault.Report.
type Report struct {
	Seed       int64             `json:"seed"`
	Rate       float64           `json:"rate"`
	Injections uint64            `json:"injections"`
	ByClass    map[string]uint64 `json:"by_class,omitempty"`
}

// Injector makes the per-opportunity injection decisions for one side of
// the protocol. Safe for concurrent use: transports and HTTP handlers
// call it from many goroutines.
type Injector struct {
	mu     sync.Mutex
	spec   Spec
	rate   float64
	delay  time.Duration
	frac   float64
	armed  [NumClasses]bool
	opps   [NumClasses]uint64
	counts [NumClasses]uint64
	total  uint64
	// parked is the release channel of a reorder-held request, closed
	// when a later request passes it.
	parked chan struct{}
}

// New validates spec and builds an injector. A nil *Injector is valid
// everywhere and injects nothing, so callers thread it unconditionally.
func New(spec Spec) (*Injector, error) {
	in := &Injector{spec: spec, rate: spec.Rate, delay: spec.Delay, frac: spec.PartitionFrac}
	if in.rate == 0 {
		in.rate = 1
	}
	if in.rate < 0 || in.rate > 1 {
		return nil, fmt.Errorf("netfault: rate %v outside (0, 1]", spec.Rate)
	}
	if in.delay == 0 {
		in.delay = 5 * time.Millisecond
	}
	if in.frac == 0 {
		in.frac = 0.5
	}
	if in.frac < 0 || in.frac > 1 {
		return nil, fmt.Errorf("netfault: partition fraction %v outside [0, 1]", spec.PartitionFrac)
	}
	if len(spec.Classes) == 0 || (len(spec.Classes) == 1 && strings.EqualFold(spec.Classes[0], "all")) {
		for c := range in.armed {
			in.armed[c] = true
		}
	} else {
		for _, name := range spec.Classes {
			c, err := ParseClass(name)
			if err != nil {
				return nil, err
			}
			in.armed[c] = true
		}
	}
	return in, nil
}

// mix is the same splitmix64-style avalanche internal/fault uses, so the
// two injectors share one reproducibility story.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= v
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// Armed reports whether class c can fire at all. Nil-safe.
func (in *Injector) Armed(c Class) bool {
	if in == nil {
		return false
	}
	return in.armed[c]
}

// Delay returns the configured fault duration.
func (in *Injector) Delay() time.Duration {
	if in == nil {
		return 0
	}
	return in.delay
}

// Should decides one injection opportunity for class c. The decision
// hashes (seed, class, per-class opportunity counter) — per-class streams
// are pure functions of the spec. Nil-safe (never fires).
func (in *Injector) Should(c Class) bool {
	if in == nil || !in.armed[c] {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.spec.MaxPerClass > 0 && in.counts[c] >= in.spec.MaxPerClass {
		return false
	}
	n := in.opps[c]
	in.opps[c]++
	if in.rate < 1 && uniform(mix(uint64(in.spec.Seed), uint64(c), n)) >= in.rate {
		return false
	}
	in.counts[c]++
	in.total++
	return true
}

// InPartition reports whether the worker with the given id belongs to the
// partitioned subset: a pure function of (seed, id), so the same fleet
// partitions the same way on every run. Nil-safe.
func (in *Injector) InPartition(workerID string) bool {
	if in == nil || workerID == "" || !in.armed[Partition] {
		return false
	}
	h := fnv.New64a()
	h.Write([]byte(workerID))
	return uniform(mix(uint64(in.spec.Seed), uint64(Partition), h.Sum64())) < in.frac
}

// Total returns the number of injections so far. Nil-safe.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Report snapshots the injector's activity. Nil-safe (zero report).
func (in *Injector) Report() Report {
	if in == nil {
		return Report{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	rep := Report{Seed: in.spec.Seed, Rate: in.rate, Injections: in.total}
	for c := Class(0); c < NumClasses; c++ {
		if in.counts[c] > 0 {
			if rep.ByClass == nil {
				rep.ByClass = make(map[string]uint64)
			}
			rep.ByClass[c.String()] = in.counts[c]
		}
	}
	return rep
}

// park registers a reorder hold and returns its release channel, releasing
// any previously-parked request first (at most one request is held).
func (in *Injector) park() chan struct{} {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.parked != nil {
		close(in.parked)
	}
	in.parked = make(chan struct{})
	return in.parked
}

// overtake releases a parked request, if any — called when another request
// completes, i.e. has overtaken the held one.
func (in *Injector) overtake() {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.parked != nil {
		close(in.parked)
		in.parked = nil
	}
}

// Transport wraps an http.RoundTripper with worker-side injection of the
// drop, delay, duplicate, reorder, reset and throttle classes. A nil
// injector forwards everything untouched.
type Transport struct {
	in   *Injector
	base http.RoundTripper
}

// NewTransport builds a faulty transport over base (nil base = the default
// transport).
func NewTransport(in *Injector, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{in: in, base: base}
}

// RoundTrip applies at most one fault of each armed class to the request,
// in a fixed class order, then forwards it.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	if in == nil {
		return t.base.RoundTrip(req)
	}
	if in.Should(Drop) {
		// The request never reaches the peer; no side effects land.
		return nil, fmt.Errorf("netfault: injected drop: connection lost before %s was sent", req.URL.Path)
	}
	if in.Should(Delay) {
		time.Sleep(in.Delay())
	}
	if in.Should(Throttle) {
		time.Sleep(in.Delay())
	}
	if in.Should(Reorder) {
		// Hold until a later request completes (overtaking this one) or
		// the hold window expires — both bound the inversion.
		release := in.park()
		select {
		case <-release:
		case <-time.After(4 * in.Delay()):
		}
	}
	if in.Should(Duplicate) {
		// First delivery's reply is discarded; the peer sees the request
		// twice. GetBody is always set for the bytes.Reader bodies the
		// dist client posts.
		if dup := cloneRequest(req); dup != nil {
			if resp, err := t.base.RoundTrip(dup); err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}
	if in.Should(Reset) {
		// Deliver the request, then tear the reply away: side effects
		// landed but the caller cannot know — the hard half of at-most-once.
		if resp, err := t.base.RoundTrip(req); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		in.overtake()
		return nil, fmt.Errorf("netfault: injected reset: read %s: connection reset by peer", req.URL.Path)
	}
	resp, err := t.base.RoundTrip(req)
	in.overtake()
	return resp, err
}

// cloneRequest duplicates req with a fresh body; nil when the body cannot
// be replayed.
func cloneRequest(req *http.Request) *http.Request {
	if req.GetBody == nil {
		return nil
	}
	body, err := req.GetBody()
	if err != nil {
		return nil
	}
	dup := req.Clone(req.Context())
	dup.Body = body
	return dup
}

// workerIDBody is the loose shape of every post-hello protocol request —
// just enough to attribute an inbound request to a worker.
type workerIDBody struct {
	WorkerID string `json:"worker_id"`
}

// maxPeek bounds how much request body the handler buffers to find the
// worker id; protocol requests are small.
const maxPeek = 1 << 20

// Handler wraps h with coordinator-side injection: drop and delay apply
// to any inbound request, partition to requests from workers in the
// partitioned subset. Rejections answer 503, which the worker-side retry
// machinery treats as a transient transport failure. A nil injector (or
// one with none of these classes armed) returns h unchanged.
func (in *Injector) Handler(h http.Handler) http.Handler {
	if in == nil || (!in.Armed(Drop) && !in.Armed(Delay) && !in.Armed(Partition)) {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if in.Armed(Partition) {
			// Re-readable body: peek the worker id, then restore.
			body, err := io.ReadAll(io.LimitReader(r.Body, maxPeek))
			r.Body.Close()
			if err != nil {
				http.Error(w, "netfault: reading request", http.StatusBadRequest)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
			var wid workerIDBody
			_ = json.Unmarshal(body, &wid)
			if in.InPartition(wid.WorkerID) && in.Should(Partition) {
				http.Error(w, fmt.Sprintf(
					"netfault: injected partition: worker %s unreachable", wid.WorkerID),
					http.StatusServiceUnavailable)
				return
			}
		}
		if in.Should(Drop) {
			http.Error(w, "netfault: injected drop: request lost inbound", http.StatusServiceUnavailable)
			return
		}
		if in.Should(Delay) {
			time.Sleep(in.Delay())
		}
		h.ServeHTTP(w, r)
	})
}
