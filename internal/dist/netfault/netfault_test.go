package netfault

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestDecisionStreamDeterministic pins the reproducibility contract: the
// per-class hit/miss sequence is a pure function of the spec.
func TestDecisionStreamDeterministic(t *testing.T) {
	mk := func() *Injector {
		in, err := New(Spec{Seed: 7, Rate: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for c := Class(0); c < NumClasses; c++ {
		for i := 0; i < 200; i++ {
			if a.Should(c) != b.Should(c) {
				t.Fatalf("class %s decision %d diverged between identical specs", c, i)
			}
		}
	}
	if a.Total() == 0 {
		t.Fatal("rate 0.3 over 200 opportunities per class fired nothing")
	}
	other, _ := New(Spec{Seed: 8, Rate: 0.3})
	same := true
	for i := 0; i < 200; i++ {
		if a2, o := mk().Should(Drop), other.Should(Drop); i > 0 && a2 != o {
			same = false
		}
	}
	_ = same // different seeds usually diverge; not a hard guarantee per-bit
}

// TestRateAndCapBounds pins that rate 1 fires every opportunity and
// MaxPerClass stops a class cold (the partition-healing mechanism).
func TestRateAndCapBounds(t *testing.T) {
	in, err := New(Spec{Seed: 1, Classes: []string{"drop"}, MaxPerClass: 3})
	if err != nil {
		t.Fatal(err)
	}
	fired := 0
	for i := 0; i < 10; i++ {
		if in.Should(Drop) {
			fired++
		}
	}
	if fired != 3 {
		t.Fatalf("MaxPerClass=3 at rate 1 fired %d times, want exactly 3", fired)
	}
	if in.Should(Delay) {
		t.Fatal("unarmed class fired")
	}
	rep := in.Report()
	if rep.Injections != 3 || rep.ByClass["drop"] != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

// TestSpecValidation pins New's rejections.
func TestSpecValidation(t *testing.T) {
	if _, err := New(Spec{Rate: 1.5}); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	if _, err := New(Spec{PartitionFrac: -0.1}); err == nil {
		t.Fatal("negative partition fraction accepted")
	}
	if _, err := New(Spec{Classes: []string{"gremlins"}}); err == nil {
		t.Fatal("unknown class accepted")
	}
	if in, err := New(Spec{Classes: []string{"all"}}); err != nil || !in.Armed(Reset) {
		t.Fatalf("\"all\" did not arm every class (err %v)", err)
	}
}

// TestInPartitionExtremes pins the deterministic subset selection: frac 1
// partitions everyone, frac ~0 no one, and membership is stable.
func TestInPartitionExtremes(t *testing.T) {
	all, _ := New(Spec{Seed: 3, Classes: []string{"partition"}, PartitionFrac: 1})
	none, _ := New(Spec{Seed: 3, Classes: []string{"partition"}, PartitionFrac: 0.0000001})
	half, _ := New(Spec{Seed: 3, Classes: []string{"partition"}})
	ids := []string{"w001", "w002", "w003", "w004", "w005", "w006", "w007", "w008"}
	inHalf := 0
	for _, id := range ids {
		if !all.InPartition(id) {
			t.Fatalf("frac 1 excluded %s", id)
		}
		if none.InPartition(id) {
			t.Fatalf("frac ~0 included %s", id)
		}
		if half.InPartition(id) != half.InPartition(id) {
			t.Fatalf("membership of %s not stable", id)
		}
		if half.InPartition(id) {
			inHalf++
		}
	}
	if inHalf == 0 || inHalf == len(ids) {
		t.Fatalf("frac 0.5 partitioned %d/%d workers; want a proper subset", inHalf, len(ids))
	}
	if all.InPartition("") {
		t.Fatal("empty worker id (hello) must never be partitioned")
	}
}

// TestNilInjectorIsInert pins the nil-safety contract every call site
// relies on.
func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Should(Drop) || in.Armed(Reset) || in.InPartition("w001") || in.Total() != 0 {
		t.Fatal("nil injector did something")
	}
	if rep := in.Report(); rep.Injections != 0 {
		t.Fatalf("nil report = %+v", rep)
	}
}

// newEchoServer counts requests and echoes a small JSON body.
func newEchoServer(hits *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte(`{"ok":true}`))
	}))
}

func postThrough(t *testing.T, srv *httptest.Server, rt http.RoundTripper) error {
	t.Helper()
	client := &http.Client{Transport: rt}
	resp, err := client.Post(srv.URL+"/dist/v1/lease", "application/json",
		bytes.NewReader([]byte(`{"worker_id":"w001"}`)))
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// TestTransportDrop pins that a dropped request never reaches the peer
// and surfaces an error that does NOT collide with expt.ErrClass's
// "timed out"/"panic:" sentinels.
func TestTransportDrop(t *testing.T) {
	var hits atomic.Int64
	srv := newEchoServer(&hits)
	defer srv.Close()
	in, _ := New(Spec{Seed: 1, Classes: []string{"drop"}, MaxPerClass: 1})
	rt := NewTransport(in, nil)
	err := postThrough(t, srv, rt)
	if err == nil {
		t.Fatal("dropped request succeeded")
	}
	if msg := err.Error(); strings.Contains(msg, "timed out") || strings.Contains(msg, "panic:") {
		t.Fatalf("drop error %q collides with ErrClass sentinels", msg)
	}
	if hits.Load() != 0 {
		t.Fatal("dropped request reached the server")
	}
	if err := postThrough(t, srv, rt); err != nil {
		t.Fatalf("post after cap spent: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1", hits.Load())
	}
}

// TestTransportReset pins reset's asymmetry: the request is delivered
// (side effects land) but the caller sees a connection-reset error.
func TestTransportReset(t *testing.T) {
	var hits atomic.Int64
	srv := newEchoServer(&hits)
	defer srv.Close()
	in, _ := New(Spec{Seed: 1, Classes: []string{"reset"}, MaxPerClass: 1})
	err := postThrough(t, srv, NewTransport(in, nil))
	if err == nil {
		t.Fatal("reset request reported success")
	}
	if !strings.Contains(err.Error(), "connection reset") {
		t.Fatalf("reset error = %v", err)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (reset delivers before tearing)", hits.Load())
	}
	if msg := err.Error(); strings.Contains(msg, "timed out") || strings.Contains(msg, "panic:") {
		t.Fatalf("reset error %q collides with ErrClass sentinels", msg)
	}
}

// TestTransportDuplicate pins that the peer sees the request twice and the
// caller still gets one good reply.
func TestTransportDuplicate(t *testing.T) {
	var hits atomic.Int64
	srv := newEchoServer(&hits)
	defer srv.Close()
	in, _ := New(Spec{Seed: 1, Classes: []string{"duplicate"}, MaxPerClass: 1})
	if err := postThrough(t, srv, NewTransport(in, nil)); err != nil {
		t.Fatalf("duplicated request failed: %v", err)
	}
	if hits.Load() != 2 {
		t.Fatalf("server saw %d requests, want 2", hits.Load())
	}
}

// TestTransportDelayAndThrottle pins that time-shaping classes slow the
// request without failing it.
func TestTransportDelayAndThrottle(t *testing.T) {
	var hits atomic.Int64
	srv := newEchoServer(&hits)
	defer srv.Close()
	in, _ := New(Spec{Seed: 1, Classes: []string{"delay", "throttle"}, Delay: 30 * time.Millisecond, MaxPerClass: 1})
	start := time.Now()
	if err := postThrough(t, srv, NewTransport(in, nil)); err != nil {
		t.Fatalf("delayed request failed: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("delay+throttle (30ms each) finished in %v", elapsed)
	}
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests", hits.Load())
	}
}

// TestHandlerPartition pins coordinator-side partitioning: requests from
// the partitioned worker answer 503 until MaxPerClass heals the split,
// and other workers are untouched.
func TestHandlerPartition(t *testing.T) {
	in, err := New(Spec{Seed: 3, Classes: []string{"partition"}, PartitionFrac: 1, MaxPerClass: 2})
	if err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	h := in.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served.Add(1)
		w.Write([]byte("ok"))
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	post := func(workerID string) int {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"worker_id": workerID})
		resp, err := http.Post(srv.URL+"/dist/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("w001"); code != http.StatusServiceUnavailable {
		t.Fatalf("partitioned worker answered %d, want 503", code)
	}
	if code := post(""); code != http.StatusOK {
		t.Fatalf("hello-shaped request (no worker id) answered %d, want 200", code)
	}
	if code := post("w001"); code != http.StatusServiceUnavailable {
		t.Fatalf("second partitioned request answered %d, want 503", code)
	}
	// Cap spent: the partition heals.
	if code := post("w001"); code != http.StatusOK {
		t.Fatalf("post-heal request answered %d, want 200", code)
	}
	if served.Load() != 2 {
		t.Fatalf("inner handler served %d requests, want 2", served.Load())
	}
}

// TestHandlerUnarmedPassthrough pins that Handler is the identity when no
// inbound class is armed — zero overhead for fault-free campaigns.
func TestHandlerUnarmedPassthrough(t *testing.T) {
	in, _ := New(Spec{Seed: 1, Classes: []string{"reset", "duplicate"}})
	inner := http.NewServeMux()
	if got := in.Handler(inner); got != http.Handler(inner) {
		t.Fatal("Handler wrapped despite no inbound classes armed")
	}
	var nilIn *Injector
	if got := nilIn.Handler(inner); got != http.Handler(inner) {
		t.Fatal("nil Handler wrapped")
	}
}
