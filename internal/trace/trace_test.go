package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bus"
)

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	// None of these may panic.
	tr.Begin(1, 0, bus.AgentApp, KindEpoch, 0, 0, 0)
	tr.End(2, 0, bus.AgentApp, KindEpoch, 0, 0, 0)
	tr.Instant(3, 0, bus.AgentApp, KindFault, 0, 0xbeef, 0)
	tr.Emit(Event{})
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer retained events")
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 2.5); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("nil WriteCSV: %v", err)
	}
}

func TestRingOrderAndWrap(t *testing.T) {
	tr := New(1) // rounds up to the 1024 minimum
	if got := len(tr.buf); got != 1024 {
		t.Fatalf("capacity = %d, want 1024", got)
	}
	total := 1500
	for i := 0; i < total; i++ {
		tr.Instant(uint64(i), 0, bus.AgentApp, KindPaint, 0, uint64(i), 0)
	}
	if tr.Len() != 1024 {
		t.Fatalf("Len = %d, want 1024", tr.Len())
	}
	if tr.Dropped() != uint64(total-1024) {
		t.Fatalf("Dropped = %d, want %d", tr.Dropped(), total-1024)
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := uint64(total - 1024 + i)
		if ev.Cycle != want {
			t.Fatalf("event %d cycle = %d, want %d (not oldest-first)", i, ev.Cycle, want)
		}
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestWriteChromePairsSpans(t *testing.T) {
	tr := New(1024)
	// A matched epoch span containing a matched STW span, one fault
	// instant, and one orphaned End (its Begin "lost" to wrap).
	tr.Begin(1000, 2, bus.AgentRevoker, KindEpoch, 4, 0, 0)
	tr.Begin(1100, 2, bus.AgentKernel, KindSTW, 5, 0, 0)
	tr.End(1600, 2, bus.AgentKernel, KindSTW, 5, 0, 0)
	tr.Instant(2000, 3, bus.AgentKernel, KindFault, 5, 0xdead_beef, 1)
	tr.End(9000, 2, bus.AgentRevoker, KindEpoch, 6, 17, 42)
	tr.End(9100, 1, bus.AgentRevoker, KindSweep, 6, 0, 0) // orphan

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf, 2.5); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	var spans, instants, orphans int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
			if ev["cat"] == "epoch" {
				if ev["dur"].(float64) <= 0 {
					t.Fatalf("epoch span has non-positive dur: %v", ev)
				}
				args := ev["args"].(map[string]any)
				if args["capsRevoked"].(float64) != 17 {
					t.Fatalf("epoch End args not carried: %v", args)
				}
			}
			if ev["cat"] == "sweep" {
				orphans++
			}
		case "i":
			instants++
			args := ev["args"].(map[string]any)
			if args["va"] != "0xdeadbeef" {
				t.Fatalf("fault VA not rendered in hex: %v", args)
			}
		}
	}
	if spans != 2 {
		t.Fatalf("got %d X spans, want 2 (epoch + STW)", spans)
	}
	if instants != 1 {
		t.Fatalf("got %d instants, want 1", instants)
	}
	if orphans != 0 {
		t.Fatal("orphaned End was emitted")
	}
}

func TestWriteCSV(t *testing.T) {
	tr := New(1024)
	tr.Begin(10, 2, bus.AgentRevoker, KindSweep, 2, 1, 8)
	tr.End(50, 2, bus.AgentRevoker, KindSweep, 2, 1, 8)
	tr.Instant(60, -1, bus.AgentKernel, KindShootdown, 3, 0, 0)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "cycle,phase,kind,core,agent,epoch,arg,arg2,detail" {
		t.Fatalf("bad header: %q", lines[0])
	}
	// The detail column holds "worker=1, pages=8" — an embedded comma, so
	// RFC 4180 requires the field be quoted.
	if lines[1] != `10,B,sweep,2,revoker,2,1,8,"worker=1, pages=8"` {
		t.Fatalf("bad row: %q", lines[1])
	}
	if lines[3] != "60,i,tlb-shootdown,-1,kernel,3,0,0," {
		t.Fatalf("bad machine-wide row: %q", lines[3])
	}
}

// TestWriteCSVRoundTrip parses the exporter's output with encoding/csv
// and checks every field survives, including quoted detail strings with
// embedded commas and hex-rendered addresses.
func TestWriteCSVRoundTrip(t *testing.T) {
	tr := New(1024)
	evs := []Event{
		{Cycle: 10, Phase: PhaseBegin, Kind: KindSweep, Core: 2, Agent: uint8(bus.AgentRevoker), Epoch: 2, Arg: 1, Arg2: 8},
		{Cycle: 25, Phase: PhaseInstant, Kind: KindFault, Core: 3, Agent: uint8(bus.AgentKernel), Epoch: 2, Arg: 0xdead_beef, Arg2: 1},
		{Cycle: 60, Phase: PhaseInstant, Kind: KindShootdown, Core: -1, Agent: uint8(bus.AgentKernel), Epoch: 3},
	}
	for _, ev := range evs {
		tr.Emit(ev)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("output is not valid RFC 4180 CSV: %v", err)
	}
	if len(recs) != len(evs)+1 {
		t.Fatalf("got %d records, want %d", len(recs), len(evs)+1)
	}
	for i, ev := range evs {
		rec := recs[i+1]
		got := Event{
			Cycle: parseU(t, rec[0]),
			Epoch: parseU(t, rec[5]),
			Arg:   parseU(t, rec[6]),
			Arg2:  parseU(t, rec[7]),
			Core:  int16(parseI(t, rec[3])),
			Agent: ev.Agent, // agent round-trips by name, checked below
			Kind:  ev.Kind,
			Phase: ev.Phase,
		}
		if got != ev {
			t.Errorf("row %d round-tripped to %+v, want %+v", i, got, ev)
		}
		if rec[1] != ev.Phase.String() || rec[2] != ev.Kind.String() {
			t.Errorf("row %d phase/kind = %q/%q", i, rec[1], rec[2])
		}
		if rec[4] != bus.Agent(ev.Agent).String() {
			t.Errorf("row %d agent = %q, want %q", i, rec[4], bus.Agent(ev.Agent))
		}
		if rec[8] != ev.Detail() {
			t.Errorf("row %d detail = %q, want %q", i, rec[8], ev.Detail())
		}
	}
	// The fault row's detail must render the VA in hex.
	if want := "va=0xdeadbeef, concurrentVisit=1"; recs[2][8] != want {
		t.Errorf("fault detail = %q, want %q", recs[2][8], want)
	}
}

func parseU(t *testing.T, s string) uint64 {
	t.Helper()
	v, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("ParseUint(%q): %v", s, err)
	}
	return v
}

func parseI(t *testing.T, s string) int64 {
	t.Helper()
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("ParseInt(%q): %v", s, err)
	}
	return v
}

func TestKindStringsDistinct(t *testing.T) {
	seen := map[string]Kind{}
	for k := Kind(0); k < numKinds; k++ {
		s := k.String()
		if s == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("kinds %d and %d share name %q", prev, k, s)
		}
		seen[s] = k
	}
}

// BenchmarkEmitDisabled pins the disabled-path cost the acceptance
// criterion cares about: one nil test per emit site.
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Tracer
	for i := 0; i < b.N; i++ {
		tr.Instant(uint64(i), 3, bus.AgentApp, KindFault, 0, 0x1000, 0)
	}
}

// BenchmarkEmitEnabled is the enabled-path cost: one ring store.
func BenchmarkEmitEnabled(b *testing.B) {
	tr := New(1 << 16)
	for i := 0; i < b.N; i++ {
		tr.Instant(uint64(i), 3, bus.AgentApp, KindFault, 0, 0x1000, 0)
	}
}
