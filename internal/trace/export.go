// Exporters: Chrome trace_event JSON (Perfetto / chrome://tracing) and
// CSV. Both render the ring's retained events; because the ring keeps the
// most recent events, a truncated trace can hold an End whose Begin was
// overwritten — the Chrome exporter matches pairs and silently drops
// orphans so the output always loads.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/bus"
)

// machineTID is the Chrome-trace thread id used for machine-wide events
// (Core == -1), kept clear of real core numbers.
const machineTID = 1000

// chromeEvent is one trace_event record. Durations and timestamps are in
// microseconds, as the format requires.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// argNames gives the kind-specific labels for Arg and Arg2 ("" = omit).
func argNames(k Kind) (string, string) {
	switch k {
	case KindEpoch:
		return "capsRevoked", "pagesVisited"
	case KindSweep:
		return "worker", "pages"
	case KindFault:
		return "va", "concurrentVisit"
	case KindQuarTrigger:
		return "quarBytes", "clearTarget"
	case KindQuarBlock:
		return "waitEpoch", ""
	case KindQuarFlush:
		return "bytes", "allocs"
	case KindPaint, KindUnpaint:
		return "addr", "len"
	case KindChunk:
		return "base", "len"
	case KindInject:
		return "class", "detail"
	case KindRecovery:
		return "action", "detail"
	}
	return "", ""
}

// hexArg reports whether the kind's Arg is an address (rendered in hex).
func hexArg(k Kind) bool {
	switch k {
	case KindFault, KindPaint, KindUnpaint, KindChunk:
		return true
	}
	return false
}

func (ev Event) tid() int {
	if ev.Core < 0 {
		return machineTID
	}
	return int(ev.Core)
}

func (ev Event) chromeArgs() map[string]any {
	args := map[string]any{
		"epoch": ev.Epoch,
		"agent": bus.Agent(ev.Agent).String(),
	}
	n1, n2 := argNames(ev.Kind)
	if n1 != "" {
		if hexArg(ev.Kind) {
			args[n1] = fmt.Sprintf("0x%x", ev.Arg)
		} else {
			args[n1] = ev.Arg
		}
	}
	if n2 != "" {
		args[n2] = ev.Arg2
	}
	return args
}

// chromeName renders the display name of an event.
func chromeName(ev Event) string {
	switch ev.Kind {
	case KindEpoch:
		return fmt.Sprintf("epoch %d", ev.Epoch)
	case KindSweep:
		return fmt.Sprintf("sweep w%d", ev.Arg)
	}
	return ev.Kind.String()
}

// WriteChrome renders the retained events as a Chrome trace_event JSON
// document. hzGHz converts cycles to wall time (cycles per nanosecond);
// pass the machine's clock (e.g. Config.Machine.Sim.HzGHz). Zero or
// negative defaults to 1 cycle = 1 ns.
//
// Span kinds are emitted as complete ("X") events by pairing each End
// with the innermost open Begin of the same kind and thread; orphaned
// Begins/Ends (ring wrap-around) are dropped. Instants become "i" events
// with thread scope.
func (t *Tracer) WriteChrome(w io.Writer, hzGHz float64) error {
	if hzGHz <= 0 {
		hzGHz = 1
	}
	toUS := func(cycle uint64) float64 { return float64(cycle) / (hzGHz * 1e3) }

	events := t.Events()
	var out []chromeEvent

	// Thread-name metadata so Perfetto labels the tracks.
	tids := map[int]string{}
	for _, ev := range events {
		tid := ev.tid()
		if _, ok := tids[tid]; !ok {
			if tid == machineTID {
				tids[tid] = "machine"
			} else {
				tids[tid] = fmt.Sprintf("core %d", tid)
			}
		}
	}
	for tid, name := range tids {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	// Pair Begin/End per (tid, kind) with a stack, emitting X events.
	type open struct {
		ev  Event
		idx int // reserve slot in out, filled when the End arrives
	}
	stacks := map[[2]int][]open{}
	for _, ev := range events {
		key := [2]int{ev.tid(), int(ev.Kind)}
		switch ev.Phase {
		case PhaseBegin:
			out = append(out, chromeEvent{}) // placeholder, keeps nesting order
			stacks[key] = append(stacks[key], open{ev: ev, idx: len(out) - 1})
		case PhaseEnd:
			st := stacks[key]
			if len(st) == 0 {
				continue // Begin lost to ring wrap
			}
			o := st[len(st)-1]
			stacks[key] = st[:len(st)-1]
			args := o.ev.chromeArgs()
			// End-side args carry the totals (caps revoked, …).
			for k, v := range ev.chromeArgs() {
				args[k] = v
			}
			out[o.idx] = chromeEvent{
				Name: chromeName(ev), Cat: ev.Kind.String(), Ph: "X",
				Ts: toUS(o.ev.Cycle), Dur: toUS(ev.Cycle) - toUS(o.ev.Cycle),
				Pid: 0, Tid: o.ev.tid(), Args: args,
			}
		case PhaseInstant:
			out = append(out, chromeEvent{
				Name: chromeName(ev), Cat: ev.Kind.String(), Ph: "i",
				Ts: toUS(ev.Cycle), Pid: 0, Tid: ev.tid(), S: "t",
				Args: ev.chromeArgs(),
			})
		}
	}
	// Drop placeholders whose End never arrived (still-open spans).
	final := out[:0]
	for _, ce := range out {
		if ce.Ph != "" {
			final = append(final, ce)
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     final,
		"displayTimeUnit": "ns",
		"otherData": map[string]any{
			"dropped": t.Dropped(),
			"source":  "repro/internal/trace",
		},
	})
}

// Detail renders the event's kind-specific arguments as a human-readable
// "name=value, name=value" string (addresses in hex). It is the CSV
// detail column; the embedded commas are why the exporter quotes per
// RFC 4180.
func (ev Event) Detail() string {
	n1, n2 := argNames(ev.Kind)
	if n1 == "" {
		return ""
	}
	var s string
	if hexArg(ev.Kind) {
		s = fmt.Sprintf("%s=0x%x", n1, ev.Arg)
	} else {
		s = fmt.Sprintf("%s=%d", n1, ev.Arg)
	}
	if n2 != "" {
		s += fmt.Sprintf(", %s=%d", n2, ev.Arg2)
	}
	return s
}

// csvHeader is the column layout of WriteCSV output.
var csvHeader = []string{"cycle", "phase", "kind", "core", "agent", "epoch", "arg", "arg2", "detail"}

// WriteCSV renders the retained events as RFC 4180 CSV (encoding/csv
// quoting), one event per row in emission order:
// cycle,phase,kind,core,agent,epoch,arg,arg2,detail. The detail column
// repeats arg/arg2 with their kind-specific names and hex rendering for
// addresses; it contains commas and is quoted accordingly.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	for _, ev := range t.Events() {
		rec := []string{
			strconv.FormatUint(ev.Cycle, 10),
			ev.Phase.String(),
			ev.Kind.String(),
			strconv.Itoa(int(ev.Core)),
			bus.Agent(ev.Agent).String(),
			strconv.FormatUint(ev.Epoch, 10),
			strconv.FormatUint(ev.Arg, 10),
			strconv.FormatUint(ev.Arg2, 10),
			ev.Detail(),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
