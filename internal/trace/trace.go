// Package trace is the structured event-tracing layer for the simulated
// stack. Every layer — the revokers, the kernel's stop-the-world
// rendezvous and trap paths, the MMU's TLB shootdowns, the quarantine
// shim, and the allocator — emits typed spans and instant events keyed by
// simulated cycle, core, and traffic agent, into a fixed-capacity ring
// buffer that keeps the most recent events of a run.
//
// Tracing is off by default: a nil *Tracer is a valid no-op tracer, so
// emit sites are a single pointer test on the hot path and a disabled run
// pays essentially nothing. Exporters (export.go) render the ring as
// Chrome trace_event JSON (loadable in Perfetto / chrome://tracing) or as
// CSV for ad-hoc analysis.
package trace

import "repro/internal/bus"

// Kind is the typed identity of an event. Span kinds are emitted as
// Begin/End pairs; instant kinds as single Instant events.
type Kind uint8

// Event kinds. The Arg/Arg2 meaning is per kind, documented here and
// echoed by the exporters.
const (
	// KindEpoch spans one whole revocation epoch, Begin after the opening
	// epoch-counter advance and End after the closing one. Arg on End is
	// the number of capabilities revoked; Arg2 the pages visited.
	KindEpoch Kind = iota
	// KindSTW spans a stop-the-world window, from the initiator starting
	// the rendezvous to the world resuming. Arg is unused.
	KindSTW
	// KindSweep spans one worker's sweep over its slice of the page list.
	// Arg is the worker index (0 = the service thread), Arg2 the number of
	// pages in the slice.
	KindSweep
	// KindFault is an instant event for one capability load-generation
	// fault (the self-healing load barrier, §4.3). Arg is the faulting
	// virtual address; Arg2 is 1 if the fault revisited a page the
	// background sweep had not yet reached (the expensive path).
	KindFault
	// KindShootdown is an instant event for one TLB shootdown broadcast
	// (all cores). Arg is unused.
	KindShootdown
	// KindQuarTrigger is an instant event for the quarantine shim deciding
	// to request a revocation pass. Arg is the quarantined byte count at
	// the trigger; Arg2 is the epoch the pass must reach before reuse.
	KindQuarTrigger
	// KindQuarBlock spans an allocation blocked on an in-flight epoch
	// (the shim over its block factor, §2.2.3). Arg is the epoch waited
	// for.
	KindQuarBlock
	// KindQuarFlush is an instant event for a quarantine buffer handed
	// back to the allocator. Arg is the bytes released; Arg2 the number of
	// quarantined allocations released.
	KindQuarFlush
	// KindPaint is an instant event for painting a freed region in the
	// revocation bitmap. Arg is the base address, Arg2 the length.
	KindPaint
	// KindUnpaint is an instant event for clearing paint on reuse. Arg is
	// the base address, Arg2 the length.
	KindUnpaint
	// KindChunk is an instant event for the allocator reserving a fresh
	// chunk from the address space. Arg is the chunk base, Arg2 its size.
	KindChunk
	// KindInject is an instant event for one injected fault
	// (internal/fault). Arg is the fault class ordinal, Arg2 a
	// class-specific detail (target core, virtual address, delay cycles).
	KindInject
	// KindRecovery is an instant event for one abort-and-retry recovery
	// action by the revoker (internal/revoke). Arg is the recovery action
	// ordinal, Arg2 a detail (pages reclaimed, retry number, delay).
	KindRecovery
	numKinds
)

// String names the kind as it appears in exports.
func (k Kind) String() string {
	switch k {
	case KindEpoch:
		return "epoch"
	case KindSTW:
		return "stop-the-world"
	case KindSweep:
		return "sweep"
	case KindFault:
		return "load-barrier-fault"
	case KindShootdown:
		return "tlb-shootdown"
	case KindQuarTrigger:
		return "quarantine-trigger"
	case KindQuarBlock:
		return "quarantine-block"
	case KindQuarFlush:
		return "quarantine-flush"
	case KindPaint:
		return "paint"
	case KindUnpaint:
		return "unpaint"
	case KindChunk:
		return "chunk-reserve"
	case KindInject:
		return "fault-inject"
	case KindRecovery:
		return "recovery"
	}
	return "unknown"
}

// Phase distinguishes span boundaries from instant events.
type Phase uint8

// Event phases.
const (
	PhaseBegin Phase = iota
	PhaseEnd
	PhaseInstant
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseBegin:
		return "B"
	case PhaseEnd:
		return "E"
	}
	return "i"
}

// Event is one trace record. Events are fixed-size and value-typed so the
// ring buffer is a flat allocation with no per-event garbage.
type Event struct {
	// Cycle is the emitting thread's virtual clock.
	Cycle uint64
	// Arg and Arg2 are kind-specific payloads (fault VA, page counts, …).
	Arg, Arg2 uint64
	// Epoch is the process revocation-epoch counter at emission.
	Epoch uint64
	// Core is the emitting core, or -1 for machine-wide events.
	Core int16
	// Agent is the traffic-attribution agent (bus.Agent).
	Agent uint8
	// Kind and Phase type the event.
	Kind  Kind
	Phase Phase
}

// Tracer is a fixed-capacity ring of Events. The zero of *Tracer (nil) is
// a valid, always-disabled tracer: every method is safe to call on it and
// costs one branch, so emit sites never need their own guards.
//
// The simulator runs one thread at a time, so Tracer needs no locking.
type Tracer struct {
	buf  []Event
	mask uint64
	// head counts every event ever emitted; when it exceeds len(buf) the
	// oldest events have been overwritten.
	head uint64
}

// New returns a Tracer keeping the most recent capacity events (rounded up
// to a power of two, minimum 1024).
func New(capacity int) *Tracer {
	n := 1024
	for n < capacity {
		n <<= 1
	}
	return &Tracer{buf: make([]Event, n), mask: uint64(n) - 1}
}

// Enabled reports whether events are being recorded.
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records one event. No-op on a nil Tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.buf[t.head&t.mask] = ev
	t.head++
}

// Begin opens a span of the given kind.
func (t *Tracer) Begin(cycle uint64, core int, agent bus.Agent, kind Kind, epoch, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Arg: arg, Arg2: arg2, Epoch: epoch,
		Core: int16(core), Agent: uint8(agent), Kind: kind, Phase: PhaseBegin})
}

// End closes the innermost open span of the given kind on the same core.
func (t *Tracer) End(cycle uint64, core int, agent bus.Agent, kind Kind, epoch, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Arg: arg, Arg2: arg2, Epoch: epoch,
		Core: int16(core), Agent: uint8(agent), Kind: kind, Phase: PhaseEnd})
}

// Instant records a point event.
func (t *Tracer) Instant(cycle uint64, core int, agent bus.Agent, kind Kind, epoch, arg, arg2 uint64) {
	if t == nil {
		return
	}
	t.Emit(Event{Cycle: cycle, Arg: arg, Arg2: arg2, Epoch: epoch,
		Core: int16(core), Agent: uint8(agent), Kind: kind, Phase: PhaseInstant})
}

// Len returns the number of events currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.head < uint64(len(t.buf)) {
		return int(t.head)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten by ring wrap-around.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	if t.head <= uint64(len(t.buf)) {
		return 0
	}
	return t.head - uint64(len(t.buf))
}

// Events returns the retained events in emission order. The slice is
// freshly allocated; the ring keeps recording.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	n := uint64(t.Len())
	out := make([]Event, 0, n)
	for i := t.head - n; i < t.head; i++ {
		out = append(out, t.buf[i&t.mask])
	}
	return out
}

// Reset discards all recorded events, keeping the buffer.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.head = 0
}
