package ca

import (
	"errors"
	"testing"
)

const addrMax = ^uint64(0)

// TestRepresentableBoundsNearTopOfAddressSpace exercises rounding where
// base+length sits at or just under 2^64: the rounded top must never wrap
// below the base. Before the saturating fix, (base+length+mask)&^mask
// wrapped to a tiny value and RepresentableBounds returned ntop < nbase.
func TestRepresentableBoundsNearTopOfAddressSpace(t *testing.T) {
	cases := []struct {
		name         string
		base, length uint64
	}{
		// e == 0 path: small length, base+length wraps.
		{"small-length-wrap", addrMax - 100, 4096},
		// e > 0 path: round-up of base+length carries past 2^64.
		{"roundup-wrap", addrMax - (1 << 20) + 1, 1 << 20},
		// base+length == 2^64 exactly (sum wraps to 0).
		{"sum-exactly-2^64", addrMax - (1 << 30) + 1, 1 << 30},
		// Huge region from a low base.
		{"huge-length", 1 << 12, addrMax - (1 << 12)},
		// Both extremes.
		{"whole-space", 0, addrMax},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			nb, nt := RepresentableBounds(tc.base, tc.length)
			if nt < nb {
				t.Fatalf("RepresentableBounds(%#x, %#x) = [%#x,%#x): top wrapped below base",
					tc.base, tc.length, nb, nt)
			}
			if nb > tc.base {
				t.Fatalf("rounded base %#x above requested base %#x", nb, tc.base)
			}
			// The rounded region must cover the request, up to saturation.
			want := tc.base + tc.length
			if want < tc.base {
				want = addrMax
			}
			if nt < want {
				t.Fatalf("rounded top %#x below requested top %#x", nt, want)
			}
		})
	}
}

// TestRepresentableLengthNearOverflow: padding a length must never wrap to
// a smaller value — an allocator padding with a wrapped length would carve
// fewer bytes than the caller asked for.
func TestRepresentableLengthNearOverflow(t *testing.T) {
	for _, l := range []uint64{addrMax, addrMax - 1, addrMax - (1 << 13), 1 << 63, (1 << 63) + 1} {
		if r := RepresentableLength(l); r < l {
			t.Fatalf("RepresentableLength(%#x) = %#x shrank the request", l, r)
		}
	}
}

// TestNewRootNearTopOfAddressSpace: a root conjured over the top of the
// address space must stay well-formed (top ≥ base, request covered).
func TestNewRootNearTopOfAddressSpace(t *testing.T) {
	c := NewRoot(addrMax-(1<<20)+1, 1<<20, PermsData)
	if !c.Tag() {
		t.Fatal("root must be tagged")
	}
	if c.Top() < c.Base() {
		t.Fatalf("root bounds [%#x,%#x): top below base", c.Base(), c.Top())
	}
	if c.Top() != addrMax {
		t.Fatalf("root top = %#x, want saturation at %#x", c.Top(), addrMax)
	}
}

// TestSetBoundsOverflowReturnsUntagged: every failing derivation near the
// top of the address space must come back untagged, never as a tagged
// capability with wrapped bounds.
func TestSetBoundsOverflowReturnsUntagged(t *testing.T) {
	root := NewRoot(0, addrMax, PermsAll)

	// base+length wraps: explicit overflow error, untagged result.
	d, err := root.WithAddr(addrMax - 16).SetBounds(4096)
	if !errors.Is(err, ErrLengthOverflow) {
		t.Fatalf("err = %v, want ErrLengthOverflow", err)
	}
	if d.Tag() {
		t.Fatal("overflowing derivation returned a tagged capability")
	}

	// Rounding carries past the parent's top: the derivation fails and the
	// result is untagged. Before the fix the wrapped top slipped past the
	// nt > c.top check and produced a tagged capability with top < base.
	parent, err := root.WithAddr(1 << 20).SetBounds(1 << 30)
	if err != nil {
		t.Fatal(err)
	}
	d, err = parent.WithAddr((1 << 20) + 4096).SetBounds((1 << 30) - 4096)
	if err == nil {
		// Fine if representable inside the parent…
		if d.Top() < d.Base() || !d.Tag() {
			t.Fatalf("derivation produced malformed capability %v", d)
		}
	} else if d.Tag() {
		t.Fatal("failed derivation returned a tagged capability")
	}

	// Derivation whose rounded top saturates: must not exceed the parent
	// silently nor wrap.
	d, err = root.WithAddr(addrMax - (1 << 20) + 1).SetBounds(1 << 20)
	if err != nil {
		if d.Tag() {
			t.Fatal("failed derivation returned a tagged capability")
		}
	} else {
		if d.Top() < d.Base() {
			t.Fatalf("derived bounds [%#x,%#x): top wrapped below base", d.Base(), d.Top())
		}
		if d.Top() > root.Top() {
			t.Fatalf("derived top %#x exceeds parent top %#x", d.Top(), root.Top())
		}
	}
}

// TestSetBoundsExactRejectsSaturatedBounds: saturated (inexact) bounds can
// never satisfy an exact derivation.
func TestSetBoundsExactRejectsSaturatedBounds(t *testing.T) {
	root := NewRoot(0, addrMax, PermsAll)
	d, err := root.WithAddr(addrMax - (1 << 20) + 1).SetBoundsExact(1 << 20)
	if err == nil {
		t.Fatalf("exact derivation of a saturated region succeeded: %v", d)
	}
	if d.Tag() {
		t.Fatal("failed exact derivation returned a tagged capability")
	}
}
