// Package ca models CHERI architectural capabilities.
//
// A capability is an unforgeable, bounded reference to a region of address
// space. The model reproduces the properties revocation depends on:
//
//   - software can perfectly distinguish valid capabilities (tag set) from
//     plain data (tag clear);
//   - capabilities can only be derived from a superset capability, so bounds
//     and permissions are monotonically non-increasing;
//   - bounds are subject to CHERI-Concentrate-style compression: large
//     regions round outward to a representable alignment, and pointers that
//     stray too far out of bounds lose their tag;
//   - the base of a capability identifies the allocation it was derived
//     from, which is what the revocation bitmap is indexed by.
//
// Capabilities are immutable values: every mutator returns a new Capability.
package ca

import (
	"errors"
	"fmt"
	"math/bits"
)

// GranuleSize is the size in bytes of a capability in memory, and therefore
// the granularity of memory tagging and of the revocation bitmap.
const GranuleSize = 16

// MantissaWidth is the number of significant bits in the compressed length
// encoding, per CHERI Concentrate. Regions longer than 2^MantissaWidth bytes
// are represented with a non-zero exponent and must be aligned accordingly.
const MantissaWidth = 14

// Perms is the permission bit-set carried by a capability. Clearing bits is
// always allowed; setting them is not.
type Perms uint16

const (
	// PermLoad allows data loads through the capability.
	PermLoad Perms = 1 << iota
	// PermStore allows data stores through the capability.
	PermStore
	// PermLoadCap allows loading capabilities (tagged values) through the
	// capability.
	PermLoadCap
	// PermStoreCap allows storing capabilities through the capability.
	PermStoreCap
	// PermExecute allows instruction fetch through the capability.
	PermExecute
	// PermGlobal marks a capability that may be stored anywhere; non-global
	// capabilities may only be stored via PermStoreLocalCap authority.
	PermGlobal
	// PermSeal allows sealing other capabilities with this one's address as
	// the object type.
	PermSeal
	// PermUnseal allows unsealing capabilities sealed with this one's
	// address as the object type.
	PermUnseal
	// PermPaint allows painting the revocation bitmap region corresponding
	// to this capability's bounds. Granted to allocators over their heaps.
	PermPaint
	// PermRecolor allows changing the version color of memory within
	// bounds (the §7.3 memory-coloring composition).
	PermRecolor
)

// PermsData is the permission set for ordinary read-write data access.
const PermsData = PermLoad | PermStore | PermLoadCap | PermStoreCap | PermGlobal

// PermsAll is every permission; held only by root capabilities.
const PermsAll = PermLoad | PermStore | PermLoadCap | PermStoreCap |
	PermExecute | PermGlobal | PermSeal | PermUnseal | PermPaint | PermRecolor

// String renders the permission set in the conventional compact form.
func (p Perms) String() string {
	s := make([]byte, 0, 10)
	add := func(bit Perms, c byte) {
		if p&bit != 0 {
			s = append(s, c)
		}
	}
	add(PermLoad, 'r')
	add(PermStore, 'w')
	add(PermLoadCap, 'R')
	add(PermStoreCap, 'W')
	add(PermExecute, 'x')
	add(PermGlobal, 'g')
	add(PermSeal, 's')
	add(PermUnseal, 'u')
	add(PermPaint, 'p')
	add(PermRecolor, 'c')
	if len(s) == 0 {
		return "-"
	}
	return string(s)
}

// Errors returned by derivation operations.
var (
	ErrTagCleared     = errors.New("ca: capability tag is clear")
	ErrSealed         = errors.New("ca: capability is sealed")
	ErrNotSealed      = errors.New("ca: capability is not sealed")
	ErrWrongOType     = errors.New("ca: object type mismatch")
	ErrExceedsBounds  = errors.New("ca: requested bounds exceed capability bounds")
	ErrPermEscalation = errors.New("ca: requested permissions exceed capability permissions")
	ErrLengthOverflow = errors.New("ca: base+length overflows the address space")
)

// Capability is a CHERI capability value. The zero value is an untagged
// null capability.
type Capability struct {
	base  uint64
	top   uint64 // exclusive; may be 0 with base 0 for null
	addr  uint64
	perms Perms
	otype uint32 // 0 when unsealed
	color uint8  // version color (§7.3 composition); 0 in plain CHERI mode
	tag   bool
}

// Null returns the canonical untagged null capability carrying the given
// address as plain data. Loading integer data through the model produces
// Null values.
func Null(addr uint64) Capability {
	return Capability{addr: addr}
}

// NewRoot conjures a root capability for [base, base+length) with the given
// permissions. Only the machine (at reset) and the kernel (when mapping
// memory) may conjure capabilities; everything else must derive.
// The bounds are rounded outward to the nearest representable bounds, as a
// hardware root register would hold.
func NewRoot(base, length uint64, perms Perms) Capability {
	b, t := RepresentableBounds(base, length)
	return Capability{base: b, top: t, addr: base, perms: perms, tag: true}
}

// Tag reports whether the capability is valid (architecturally tagged).
func (c Capability) Tag() bool { return c.tag }

// Base returns the inclusive lower bound. The revocation bitmap is indexed
// by Base, not Addr, because CHERI guarantees the base cannot be moved
// without destroying the capability.
func (c Capability) Base() uint64 { return c.base }

// Top returns the exclusive upper bound.
func (c Capability) Top() uint64 { return c.top }

// Len returns the length of the bounds region.
func (c Capability) Len() uint64 { return c.top - c.base }

// Addr returns the current address (cursor) of the capability.
func (c Capability) Addr() uint64 { return c.addr }

// Perms returns the permission bits.
func (c Capability) Perms() Perms { return c.perms }

// Color returns the version color (§7.3 memory-coloring composition).
func (c Capability) Color() uint8 { return c.color }

// Sealed reports whether the capability is sealed.
func (c Capability) Sealed() bool { return c.otype != 0 }

// OType returns the object type, or zero if unsealed.
func (c Capability) OType() uint32 { return c.otype }

// IsNull reports whether this is (tag-free) null-derived data.
func (c Capability) IsNull() bool { return !c.tag && c.base == 0 && c.top == 0 }

// String renders the capability in a CheriBSD-like format.
func (c Capability) String() string {
	t := 'v'
	if !c.tag {
		t = 'i'
	}
	sealed := ""
	if c.otype != 0 {
		sealed = fmt.Sprintf(" sealed(%d)", c.otype)
	}
	return fmt.Sprintf("cap{%c 0x%x [0x%x,0x%x) %s c%d%s}", t, c.addr, c.base, c.top, c.perms, c.color, sealed)
}

// InBounds reports whether an access of size bytes at the current address
// lies entirely within bounds.
func (c Capability) InBounds(size uint64) bool {
	return c.addr >= c.base && size <= c.top-c.addr && c.addr+size >= c.addr
}

// HasPerms reports whether every permission in want is present.
func (c Capability) HasPerms(want Perms) bool { return c.perms&want == want }

// CheckAccess validates an access of size bytes at the current address
// requiring perms. It returns a descriptive error on failure, nil otherwise.
func (c Capability) CheckAccess(size uint64, want Perms) error {
	switch {
	case !c.tag:
		return ErrTagCleared
	case c.otype != 0:
		return ErrSealed
	case !c.HasPerms(want):
		return fmt.Errorf("%w: have %s want %s", ErrPermEscalation, c.perms, want)
	case !c.InBounds(size):
		return fmt.Errorf("ca: access [0x%x,+%d) outside bounds [0x%x,0x%x)", c.addr, size, c.base, c.top)
	}
	return nil
}

// ClearTag returns the capability with its tag cleared. This is what
// revocation does to stale capabilities found in memory.
func (c Capability) ClearTag() Capability {
	c.tag = false
	return c
}

// ClearPerms returns the capability with the given permissions removed.
// Removing permissions is always monotone and requires no checks beyond the
// tag being set.
func (c Capability) ClearPerms(drop Perms) Capability {
	c.perms &^= drop
	return c
}

// WithPerms returns the capability restricted to exactly keep ∩ current.
func (c Capability) WithPerms(keep Perms) Capability {
	c.perms &= keep
	return c
}

// WithColor returns the capability carrying the given version color. Colors
// live under the tag's integrity protection (§7.3): deriving a new color
// requires PermRecolor.
func (c Capability) WithColor(color uint8) (Capability, error) {
	if !c.tag {
		return c.ClearTag(), ErrTagCleared
	}
	if !c.HasPerms(PermRecolor) {
		return c.ClearTag(), ErrPermEscalation
	}
	c.color = color
	return c, nil
}

// WithAddr returns the capability with its cursor moved to addr. Moving far
// enough outside bounds that the compressed encoding can no longer represent
// the bounds clears the tag, per CHERI Concentrate.
func (c Capability) WithAddr(addr uint64) Capability {
	c.addr = addr
	if c.tag && !representableCursor(c.base, c.top, addr) {
		c.tag = false
	}
	return c
}

// AddAddr returns the capability with its cursor advanced by delta (which
// may be negative via two's complement wrap, as in hardware).
func (c Capability) AddAddr(delta uint64) Capability {
	return c.WithAddr(c.addr + delta)
}

// SetBounds derives a capability whose bounds are [addr, addr+length),
// rounded outward to representable bounds. Per the architecture, if the
// rounded bounds would escape the parent's bounds the derivation fails.
// The cursor is placed at addr.
func (c Capability) SetBounds(length uint64) (Capability, error) {
	if !c.tag {
		return c.ClearTag(), ErrTagCleared
	}
	if c.otype != 0 {
		return c.ClearTag(), ErrSealed
	}
	base := c.addr
	if base+length < base {
		return c.ClearTag(), ErrLengthOverflow
	}
	nb, nt := RepresentableBounds(base, length)
	if nb < c.base || nt > c.top {
		return c.ClearTag(), fmt.Errorf("%w: [0x%x,0x%x) rounds to [0x%x,0x%x) outside [0x%x,0x%x)",
			ErrExceedsBounds, base, base+length, nb, nt, c.base, c.top)
	}
	c.base, c.top, c.addr = nb, nt, base
	return c, nil
}

// SetBoundsExact derives a capability with exactly [addr, addr+length)
// bounds, failing if those bounds are not precisely representable. Heap
// allocators use this: they pad requests with RepresentableLength so that
// returned objects always have exact bounds.
func (c Capability) SetBoundsExact(length uint64) (Capability, error) {
	d, err := c.SetBounds(length)
	if err != nil {
		return d, err
	}
	if d.base != c.addr || d.top != c.addr+length {
		return c.ClearTag(), fmt.Errorf("ca: bounds [0x%x,+%d) not exactly representable", c.addr, length)
	}
	return d, nil
}

// Seal returns the capability sealed with the sealer's address as otype.
// Sealed capabilities are immutable and non-dereferenceable until unsealed.
func (c Capability) Seal(sealer Capability) (Capability, error) {
	if !c.tag || !sealer.tag {
		return c.ClearTag(), ErrTagCleared
	}
	if c.otype != 0 {
		return c.ClearTag(), ErrSealed
	}
	if !sealer.HasPerms(PermSeal) || !sealer.InBounds(1) {
		return c.ClearTag(), ErrPermEscalation
	}
	if sealer.addr == 0 || sealer.addr > 1<<13-1 {
		// Object types must fit the 13-bit field of the 128-bit encoding.
		return c.ClearTag(), fmt.Errorf("ca: otype 0x%x out of range", sealer.addr)
	}
	c.otype = uint32(sealer.addr)
	return c, nil
}

// Unseal returns the capability unsealed, verifying the unsealer authorizes
// the object type.
func (c Capability) Unseal(unsealer Capability) (Capability, error) {
	if !c.tag || !unsealer.tag {
		return c.ClearTag(), ErrTagCleared
	}
	if c.otype == 0 {
		return c.ClearTag(), ErrNotSealed
	}
	if !unsealer.HasPerms(PermUnseal) || !unsealer.InBounds(1) {
		return c.ClearTag(), ErrPermEscalation
	}
	if uint32(unsealer.addr) != c.otype {
		return c.ClearTag(), ErrWrongOType
	}
	c.otype = 0
	return c, nil
}

// Subset reports whether c's bounds and permissions are a subset of p's.
// This is the implicit provenance relation global revocation relies on
// (§2.2): a heap allocator holding p can demonstrate its progenitor claim
// over any c with Subset(c, p).
func (c Capability) Subset(p Capability) bool {
	return c.base >= p.base && c.top <= p.top && p.perms&c.perms == c.perms
}

// --- CHERI-Concentrate-style bounds compression -------------------------

// exponent returns the CC exponent needed to represent a region of the
// given length: the smallest E such that the length in quanta fits in
// MantissaWidth-1 bits. Keeping the length to half the 2^MantissaWidth
// window leaves representable-space slack around the bounds for
// out-of-bounds cursors, as CHERI Concentrate does.
func exponent(length uint64) uint {
	if length <= 1<<(MantissaWidth-1) {
		return 0
	}
	return uint(bits.Len64(length-1)) - (MantissaWidth - 1)
}

// RepresentableBounds rounds [base, base+length) outward to bounds that the
// compressed encoding can hold exactly: base rounds down and top rounds up
// to 2^E alignment. Hardware holds the top in a 65-bit internal value; this
// model's exclusive top is a uint64, so rounding that would carry past the
// top of the address space saturates at ^uint64(0) instead of wrapping
// below the base. Saturated bounds are inexact by construction, so exact
// derivations over them fail (SetBoundsExact) rather than produce a
// capability whose top lies below its base.
func RepresentableBounds(base, length uint64) (nbase, ntop uint64) {
	e := exponent(length)
	sum := base + length
	if sum < base { // request runs past the address space: saturate
		sum = ^uint64(0)
	}
	if e == 0 {
		return base, sum
	}
	mask := (uint64(1) << e) - 1
	nbase = base &^ mask
	ntop = roundUpSat(sum, mask)
	// Rounding may have grown the region past the current exponent's reach;
	// at most one extra iteration is needed.
	if e2 := exponent(ntop - nbase); e2 > e {
		mask = (uint64(1) << e2) - 1
		nbase = base &^ mask
		ntop = roundUpSat(sum, mask)
	}
	return nbase, ntop
}

// roundUpSat rounds v up to the next multiple of mask+1, saturating at the
// top of the address space instead of wrapping.
func roundUpSat(v, mask uint64) uint64 {
	r := (v + mask) &^ mask
	if r < v {
		return ^uint64(0)
	}
	return r
}

// RepresentableLength rounds length up to the next value for which bounds
// starting at a RepresentableAlign-aligned base are exact. Allocators pad
// allocation sizes with this so returned capabilities never leak slack.
// Lengths whose padding would exceed 2^64 saturate at ^uint64(0) — the
// padded request then fails to allocate instead of silently shrinking.
func RepresentableLength(length uint64) uint64 {
	e := exponent(length)
	if e == 0 {
		return length
	}
	r := roundUpSat(length, (uint64(1)<<e)-1)
	if e2 := exponent(r); e2 > e {
		r = roundUpSat(length, (uint64(1)<<e2)-1)
	}
	return r
}

// RepresentableAlign returns the alignment a base must have for bounds of
// the given length to be exact.
func RepresentableAlign(length uint64) uint64 {
	return uint64(1) << exponent(length)
}

// representableCursor reports whether addr remains inside the
// representable window of bounds [base, top): one eighth of the
// 2^MantissaWidth-quanta window on either side, matching the region
// boundary the 128-bit encoding (encoding.go) uses to reconstruct bounds.
func representableCursor(base, top, addr uint64) bool {
	length := top - base
	e := exponent(length)
	slack := uint64(1) << (e + MantissaWidth - 3)
	lo := base - slack
	if lo > base { // underflow
		lo = 0
	}
	hi := top + slack
	if hi < top { // overflow
		hi = ^uint64(0)
	}
	return addr >= lo && addr < hi
}
