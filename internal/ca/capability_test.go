package ca

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNullIsUntagged(t *testing.T) {
	n := Null(0x1234)
	if n.Tag() {
		t.Fatal("null capability must be untagged")
	}
	if n.Addr() != 0x1234 {
		t.Fatalf("addr = %#x, want 0x1234", n.Addr())
	}
	if !n.IsNull() {
		t.Fatal("IsNull() = false")
	}
}

func TestNewRootSmallBoundsExact(t *testing.T) {
	c := NewRoot(0x1000, 4096, PermsData)
	if !c.Tag() {
		t.Fatal("root must be tagged")
	}
	if c.Base() != 0x1000 || c.Top() != 0x2000 {
		t.Fatalf("bounds [%#x,%#x), want [0x1000,0x2000)", c.Base(), c.Top())
	}
	if c.Len() != 4096 {
		t.Fatalf("len = %d, want 4096", c.Len())
	}
}

func TestSetBoundsMonotone(t *testing.T) {
	root := NewRoot(0, 1<<30, PermsAll)
	obj, err := root.WithAddr(0x4000).SetBounds(256)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Base() != 0x4000 || obj.Top() != 0x4100 {
		t.Fatalf("bounds [%#x,%#x)", obj.Base(), obj.Top())
	}
	// Widening must fail.
	if _, err := obj.WithAddr(0x4000).SetBounds(512); err == nil {
		t.Fatal("widening SetBounds succeeded")
	}
	// Escaping below base must fail.
	if _, err := obj.WithAddr(0x3ff0).SetBounds(16); err == nil {
		t.Fatal("SetBounds below base succeeded")
	}
}

func TestSetBoundsOnUntagged(t *testing.T) {
	if _, err := Null(0).SetBounds(16); err != ErrTagCleared {
		t.Fatalf("err = %v, want ErrTagCleared", err)
	}
}

func TestSetBoundsExactRejectsUnrepresentable(t *testing.T) {
	root := NewRoot(0, 1<<40, PermsAll)
	// A large odd length at an odd base is not exactly representable.
	length := uint64(1<<MantissaWidth) + 3
	if _, err := root.WithAddr(1).SetBoundsExact(length); err == nil {
		t.Fatal("unrepresentable exact bounds accepted")
	}
	// Padding the request per RepresentableLength and aligning the base
	// must always succeed.
	pad := RepresentableLength(length)
	align := RepresentableAlign(pad)
	base := (uint64(0x123457) + align - 1) &^ (align - 1)
	got, err := root.WithAddr(base).SetBoundsExact(pad)
	if err != nil {
		t.Fatalf("padded exact bounds rejected: %v", err)
	}
	if got.Base() != base || got.Len() != pad {
		t.Fatalf("bounds [%#x,+%d), want [%#x,+%d)", got.Base(), got.Len(), base, pad)
	}
}

func TestPermsMonotone(t *testing.T) {
	c := NewRoot(0, 4096, PermsData)
	d := c.ClearPerms(PermStore | PermStoreCap)
	if d.HasPerms(PermStore) || d.HasPerms(PermStoreCap) {
		t.Fatal("cleared perms still present")
	}
	if !d.HasPerms(PermLoad) {
		t.Fatal("unrelated perm lost")
	}
	if err := d.CheckAccess(8, PermStore); err == nil {
		t.Fatal("store through read-only capability allowed")
	}
}

func TestCheckAccess(t *testing.T) {
	c := NewRoot(0x1000, 64, PermsData)
	if err := c.CheckAccess(64, PermLoad); err != nil {
		t.Fatalf("in-bounds load rejected: %v", err)
	}
	if err := c.CheckAccess(65, PermLoad); err == nil {
		t.Fatal("oversized load allowed")
	}
	if err := c.AddAddr(60).CheckAccess(8, PermLoad); err == nil {
		t.Fatal("straddling load allowed")
	}
	if err := c.ClearTag().CheckAccess(8, PermLoad); err != ErrTagCleared {
		t.Fatalf("untagged access err = %v", err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	root := NewRoot(0, 1<<20, PermsAll)
	sealer := root.WithAddr(42)
	obj := NewRoot(0x2000, 128, PermsData)
	sealed, err := obj.Seal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	if !sealed.Sealed() || sealed.OType() != 42 {
		t.Fatalf("sealed = %v otype = %d", sealed.Sealed(), sealed.OType())
	}
	if err := sealed.CheckAccess(8, PermLoad); err == nil {
		t.Fatal("dereference of sealed capability allowed")
	}
	if _, err := sealed.SetBounds(8); err == nil {
		t.Fatal("SetBounds on sealed capability allowed")
	}
	wrong := root.WithAddr(43)
	if _, err := sealed.Unseal(wrong); err != ErrWrongOType {
		t.Fatalf("unseal with wrong otype err = %v", err)
	}
	back, err := sealed.Unseal(sealer.WithPerms(PermUnseal | PermsAll))
	if err != nil {
		t.Fatal(err)
	}
	if back.Sealed() {
		t.Fatal("unsealed capability still sealed")
	}
	if back.Base() != obj.Base() || back.Top() != obj.Top() {
		t.Fatal("unseal changed bounds")
	}
}

func TestWithAddrFarOutOfBoundsDetags(t *testing.T) {
	c := NewRoot(1<<32, 1<<20, PermsData)
	if !c.WithAddr(1<<32 + 100).Tag() {
		t.Fatal("in-bounds cursor move detagged")
	}
	if c.WithAddr(0).Tag() {
		t.Fatal("cursor at 0 from base 2^32 stayed tagged")
	}
}

func TestColorRequiresPermission(t *testing.T) {
	c := NewRoot(0, 4096, PermsData)
	if _, err := c.WithColor(3); err == nil {
		t.Fatal("recolor without PermRecolor allowed")
	}
	a := NewRoot(0, 4096, PermsData|PermRecolor)
	d, err := a.WithColor(3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Color() != 3 {
		t.Fatalf("color = %d, want 3", d.Color())
	}
}

func TestSubset(t *testing.T) {
	p := NewRoot(0x1000, 1<<16, PermsData)
	c, err := p.WithAddr(0x2000).SetBounds(64)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Subset(p) {
		t.Fatal("derived capability not subset of parent")
	}
	if p.Subset(c) {
		t.Fatal("parent subset of child")
	}
}

// Property: derivation is monotone — SetBounds never yields bounds outside
// the parent, and never yields permissions beyond the parent.
func TestQuickDerivationMonotone(t *testing.T) {
	f := func(base uint32, off uint16, length uint16, drop uint16) bool {
		parent := NewRoot(uint64(base), 1<<20, PermsAll)
		child, err := parent.WithAddr(uint64(base) + uint64(off)).SetBounds(uint64(length))
		if err != nil {
			return true // rejection is always safe
		}
		child = child.ClearPerms(Perms(drop))
		return child.Subset(parent)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: RepresentableBounds always covers the requested region and
// RepresentableLength/Align produce exactly-representable pairs.
func TestQuickRepresentability(t *testing.T) {
	f := func(base uint64, length uint32) bool {
		l := uint64(length)
		nb, nt := RepresentableBounds(base, l)
		if nb > base || nt < base+l {
			return false
		}
		pad := RepresentableLength(l)
		if pad < l {
			return false
		}
		align := RepresentableAlign(pad)
		ab := base &^ (align - 1)
		eb, et := RepresentableBounds(ab, pad)
		return eb == ab && et == ab+pad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: a cursor within bounds never detags.
func TestQuickInBoundsCursorKeepsTag(t *testing.T) {
	f := func(base uint32, length uint32, off uint32) bool {
		if length == 0 {
			return true
		}
		c := NewRoot(uint64(base), uint64(length), PermsData)
		a := c.Base() + uint64(off)%c.Len()
		return c.WithAddr(a).Tag()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: ClearTag is terminal — no derivation resurrects a tag.
func TestQuickClearTagTerminal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		c := NewRoot(rng.Uint64()%(1<<40), 1+rng.Uint64()%(1<<20), PermsAll).ClearTag()
		if d, _ := c.SetBounds(16); d.Tag() {
			t.Fatal("SetBounds resurrected tag")
		}
		if d := c.WithAddr(c.Base()); d.Tag() {
			t.Fatal("WithAddr resurrected tag")
		}
		if d, _ := c.WithColor(1); d.Tag() {
			t.Fatal("WithColor resurrected tag")
		}
	}
}

func TestPermsString(t *testing.T) {
	if got := (PermLoad | PermStore).String(); got != "rw" {
		t.Fatalf("perms string = %q, want %q", got, "rw")
	}
	if got := Perms(0).String(); got != "-" {
		t.Fatalf("empty perms string = %q, want -", got)
	}
}

func BenchmarkSetBounds(b *testing.B) {
	root := NewRoot(0, 1<<40, PermsAll)
	for i := 0; i < b.N; i++ {
		if _, err := root.WithAddr(uint64(i)<<4 + 1<<20).SetBounds(64); err != nil {
			b.Fatal(err)
		}
	}
}
