package ca

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// roundTrip encodes and decodes c, failing the test on any mismatch.
func roundTrip(t *testing.T, c Capability) {
	t.Helper()
	b, err := c.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", c, err)
	}
	d := Decode(b, c.Tag())
	if d != c {
		t.Fatalf("round trip mismatch:\n in %v\nout %v", c, d)
	}
}

func TestEncodeDecodeBasics(t *testing.T) {
	roundTrip(t, NewRoot(0x1000, 64, PermsData))
	roundTrip(t, NewRoot(0x1_0000_0000, 1<<20, PermsAll))
	roundTrip(t, NewRoot(0, 16, PermLoad))
	// Cursor at top (one past the end).
	c := NewRoot(0x4000, 256, PermsData).WithAddr(0x4100)
	roundTrip(t, c)
	// Cursor slightly below base, still in the representable window.
	c = NewRoot(0x10000, 4096, PermsData).WithAddr(0x10000 - 64)
	if !c.Tag() {
		t.Fatal("cursor just below base should stay representable")
	}
	roundTrip(t, c)
}

func TestEncodeDecodeColorsAndSealing(t *testing.T) {
	a := NewRoot(0x2000, 128, PermsData|PermRecolor)
	col, err := a.WithColor(9)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, col)

	sealer := NewRoot(0, 8192, PermSeal|PermUnseal).WithAddr(42)
	obj := NewRoot(0x8000, 256, PermsData)
	sealed, err := obj.Seal(sealer)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, sealed)
}

func TestEncodeNull(t *testing.T) {
	b, err := Null(0xdead).Encode()
	if err != nil {
		t.Fatal(err)
	}
	d := Decode(b, false)
	if d.Tag() || d.Addr() != 0xdead || !d.IsNull() {
		t.Fatalf("null round trip = %v", d)
	}
}

func TestEncodeRejectsOversizedFields(t *testing.T) {
	c := NewRoot(0x1000, 64, PermsData)
	c.otype = 1 << 13 // out of field range
	if _, err := c.Encode(); err == nil {
		t.Fatal("oversized otype encoded")
	}
	c = NewRoot(0x1000, 64, PermsData)
	c.color = 16
	if _, err := c.Encode(); err == nil {
		t.Fatal("oversized color encoded")
	}
}

func TestEncodedCapabilityFitsGranule(t *testing.T) {
	if EncodedSize != GranuleSize {
		t.Fatalf("encoded size %d != granule size %d", EncodedSize, GranuleSize)
	}
}

// Property: every capability derivable through the package API encodes,
// and the round trip is exact — including large regions (non-zero
// exponent) and out-of-bounds cursors that survived WithAddr.
func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(base uint64, length uint32, cursorOff int32, perms uint16, color uint8) bool {
		base %= 1 << 44
		l := uint64(length)%(1<<26) + 1
		root := NewRoot(base, l, Perms(perms)&PermsAll|PermRecolor)
		if col, err := root.WithColor(color % 16); err == nil {
			root = col
		}
		moved := root.AddAddr(uint64(int64(cursorOff)))
		for _, c := range []Capability{root, moved} {
			b, err := c.Encode()
			if err != nil {
				return false
			}
			// Exact round-trip is promised for tagged capabilities; a
			// detagged far-out cursor legitimately decodes to different
			// bounds (its bits no longer mean anything).
			if c.Tag() && Decode(b, true) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

// Property: SetBounds-derived children round-trip too (their bases are not
// window-aligned like roots' are).
func TestQuickEncodeDerivedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	root := NewRoot(0, 1<<40, PermsAll)
	for i := 0; i < 20000; i++ {
		addr := rng.Uint64() % (1 << 38)
		length := rng.Uint64()%(1<<20) + 1
		child, err := root.WithAddr(addr).SetBounds(length)
		if err != nil {
			continue
		}
		// Move the cursor around inside (and slightly outside) bounds.
		child = child.AddAddr(rng.Uint64() % (child.Len() + 1))
		roundTrip(t, child)
	}
}
