package ca

import (
	"encoding/binary"
	"fmt"
)

// This file implements a concrete 128-bit in-memory encoding of the
// capability format in the style of CHERI Concentrate: a 64-bit address
// word plus a 64-bit metadata word holding permissions, object type,
// version color, and compressed bounds — an exponent E with the base
// quantum's low mantissa bits and the length in quanta. The tag is *not*
// part of the 128 bits; exactly as in hardware, validity travels out of
// band (package tmem models that).
//
// The simulator manipulates Capability structs for speed, but the encoding
// is load-bearing: Encode fails loudly if a capability's bounds escape the
// representable envelope (proving the derivation API never constructs
// one), and Decode∘Encode is exact for every derivable capability,
// including out-of-bounds cursors within the representable window — the
// round-trip property test in encoding_test.go checks this exhaustively.
//
// Metadata word layout (bit 0 least significant):
//
//	[63:52] perms     (12 bits)
//	[51:39] otype     (13 bits)
//	[38:33] exponent  (6 bits)
//	[32:19] B         (14 bits: baseQ mod 2^MantissaWidth)
//	[18: 5] L         (14 bits: length in quanta; ≤ 2^(MantissaWidth-1))
//	[ 4: 1] color     (4 bits; §7.3 composition)
//	[    0] reserved
//
// Bounds reconstruction uses CHERI Concentrate's representable-region
// correction: the base quantum's high bits come from the address quantum's
// high bits, adjusted by comparing both mantissas against the region
// boundary R = B - 2^(MantissaWidth-3). The exponent is chosen (see
// exponent in capability.go) so the length occupies at most half the
// 2^MantissaWidth window, leaving an eighth of a window of slack below the
// base and at least an eighth above the top for out-of-bounds cursors —
// the same envelope representableCursor enforces.

// EncodedSize is the in-memory size of an encoded capability, matching
// GranuleSize.
const EncodedSize = 16

// ErrNotRepresentable reports a capability that does not fit the 128-bit
// encoding.
var ErrNotRepresentable = fmt.Errorf("ca: capability not representable in the 128-bit encoding")

const (
	mwMask = (uint64(1) << MantissaWidth) - 1
	// regionSlack is the representable-region offset below the base, in
	// quanta: an eighth of the 2^MantissaWidth window.
	regionSlack = uint64(1) << (MantissaWidth - 3)
)

// Encode serializes the capability (sans tag) into 16 bytes.
func (c Capability) Encode() ([EncodedSize]byte, error) {
	var out [EncodedSize]byte
	if c.IsNull() || (!c.tag && c.base == 0 && c.top == 0) {
		binary.LittleEndian.PutUint64(out[0:8], c.addr)
		binary.LittleEndian.PutUint64(out[8:16], 0)
		return out, nil
	}
	exp := exponent(c.top - c.base)
	mask := (uint64(1) << exp) - 1
	if c.base&mask != 0 || c.top&mask != 0 {
		return out, fmt.Errorf("%w: bounds [%#x,%#x) not %d-aligned", ErrNotRepresentable, c.base, c.top, uint64(1)<<exp)
	}
	lenQ := (c.top - c.base) >> exp
	if lenQ > 1<<(MantissaWidth-1) {
		return out, fmt.Errorf("%w: length %d quanta exceeds mantissa", ErrNotRepresentable, lenQ)
	}
	if c.perms > 1<<12-1 {
		return out, fmt.Errorf("%w: perms %#x exceed 12 bits", ErrNotRepresentable, c.perms)
	}
	if c.otype > 1<<13-1 {
		return out, fmt.Errorf("%w: otype %#x exceeds 13 bits", ErrNotRepresentable, c.otype)
	}
	if c.color > 1<<4-1 {
		return out, fmt.Errorf("%w: color %d exceeds 4 bits", ErrNotRepresentable, c.color)
	}
	// A tagged capability's cursor must sit inside the representable
	// window or the encoding cannot reconstruct the bounds — WithAddr
	// detags before that can happen, so hitting this is a derivation bug.
	// Untagged capabilities encode unconditionally: their bits no longer
	// promise anything (decoding one whose cursor escaped the window
	// yields different bounds, exactly as on hardware).
	if c.tag && !representableCursor(c.base, c.top, c.addr) {
		return out, fmt.Errorf("%w: tagged cursor %#x outside window of [%#x,%#x)", ErrNotRepresentable, c.addr, c.base, c.top)
	}
	baseQ := c.base >> exp
	meta := uint64(c.perms) << 52
	meta |= uint64(c.otype) << 39
	meta |= uint64(exp) << 33
	meta |= (baseQ & mwMask) << 19
	meta |= (lenQ & mwMask) << 5
	meta |= uint64(c.color) << 1
	binary.LittleEndian.PutUint64(out[0:8], c.addr)
	binary.LittleEndian.PutUint64(out[8:16], meta)
	return out, nil
}

// Decode reconstructs a capability from its 16-byte encoding plus the
// out-of-band tag bit.
func Decode(b [EncodedSize]byte, tag bool) Capability {
	addr := binary.LittleEndian.Uint64(b[0:8])
	meta := binary.LittleEndian.Uint64(b[8:16])
	if meta == 0 {
		c := Null(addr)
		c.tag = tag && false // an all-zero metadata word is never a valid capability
		return c
	}
	perms := Perms(meta >> 52)
	otype := uint32((meta >> 39) & 0x1fff)
	exp := uint((meta >> 33) & 0x3f)
	bMant := (meta >> 19) & mwMask
	lenQ := (meta >> 5) & mwMask
	color := uint8((meta >> 1) & 0xf)

	// CHERI-Concentrate region correction: R splits the window an eighth
	// below the base mantissa. Quanta with mantissa ≥ R share the base's
	// window alignment; quanta with mantissa < R sit in the next window.
	a := addr >> exp
	aMid := a & mwMask
	aHigh := a >> MantissaWidth
	r := (bMant - regionSlack) & mwMask
	aUpper := aMid < r // address quantum is past the window wrap
	bUpper := bMant < r
	high := aHigh
	switch {
	case aUpper && !bUpper:
		high-- // address wrapped into the next window; base did not
	case !aUpper && bUpper:
		high++ // base wrapped; address did not
	}
	baseQ := high<<MantissaWidth | bMant
	base := baseQ << exp
	top := base + lenQ<<exp
	return Capability{
		base:  base,
		top:   top,
		addr:  addr,
		perms: perms,
		otype: otype,
		color: color,
		tag:   tag,
	}
}
