// Command chaos runs deterministic fault-injection campaigns against the
// revocation protocol and audits every run with the end-to-end soundness
// oracle (internal/oracle). Each campaign cell is one (strategy, fault
// class, seed) run of the adversarial chaos workload with the named fault
// class armed; a per-strategy control row runs with faults disabled. Every
// run is classified:
//
//	detected  — the oracle flagged at least one invariant violation: the
//	            injected unsoundness was caught.
//	tolerated — faults were injected, the oracle saw a clean machine, and
//	            the revoker's abort-and-retry recovery was recorded.
//	silent    — faults were injected and NEITHER happened. This is the
//	            outcome the campaign exists to rule out.
//	clean     — no injection opportunity fired (or faults were disabled)
//	            and the oracle saw a clean machine.
//
// -strict applies the expected-outcome matrix for Cornucopia Reloaded
// (protocol-subverting classes must be detected; infrastructure faults
// must be tolerated; nothing may be silent; controls must be clean) and
// exits non-zero on any miss.
//
// The campaign report (-out) contains only simulation-derived quantities —
// no host timing — so the same invocation produces a byte-identical report
// at any -workers count, under either -sweepkernel, and under either
// -simengine (the fast and classic engines make bit-identical scheduling
// decisions; see internal/sim).
//
// Usage:
//
//	chaos [-strategies reloaded,cornucopia,... | all] [-classes all|c1,c2,...]
//	      [-seeds N] [-seed BASE] [-rate R] [-max N] [-delay CYCLES] [-ops N]
//	      [-workers N] [-timeout D] [-retries N] [-retry-backoff D]
//	      [-resume FILE] [-compact]
//	      [-exec local|net] [-listen ADDR] [-addr-file FILE] [-heartbeat D]
//	      [-retry-backoff-max D] [-retry-jitter F]
//	      [-netfault CLASSES] [-netfault-seed N] [-netfault-rate P]
//	      [-netfault-max N] [-netfault-delay D] [-netfault-partition-frac F]
//	      [-breaker-failures N] [-breaker-cooldown D]
//	      [-evict-after D] [-local-fallback D]
//	      [-http ADDR] [-http-linger D]
//	      [-journal FILE] [-timeline FILE] [-timeline-canonical]
//	      [-trace-events N]
//	      [-sweepkernel word|granule] [-simengine fast|classic]
//	      [-out report.json] [-progress] [-strict] [-list-classes]
//
// -exec=net makes this process the campaign coordinator (internal/dist):
// cmd/worker processes connect to -listen and lease cells over the
// cornucopia-dist/v1 protocol. The report needs no normalization to
// compare against a local run — it already contains no host timing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"

	"repro/internal/expt"
	"repro/internal/expt/cliflags"
	"repro/internal/fault"
	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/revoke"
	"repro/internal/telemetry"
)

// Schema versions the campaign report document.
const Schema = "cornucopia-chaos/v1"

// seedStride separates per-rep seeds, matching harness.Repeat's cold-boot
// batches.
const seedStride = 1000003

// controlClass labels the faults-disabled control row.
const controlClass = "none"

// RunOutcome is one campaign cell run, flattened for the report.
type RunOutcome struct {
	Seed       int64  `json:"seed"`
	Injections uint64 `json:"injections"`
	Violations uint64 `json:"violations"`
	Recoveries uint64 `json:"recoveries"`
	Outcome    string `json:"outcome"`
}

// Cell aggregates one (strategy, class) row over all seeds.
type Cell struct {
	Strategy string `json:"strategy"`
	Class    string `json:"class"`
	// Detected/Tolerated/Silent/Clean count run outcomes.
	Detected  int `json:"detected"`
	Tolerated int `json:"tolerated"`
	Silent    int `json:"silent"`
	Clean     int `json:"clean"`
	// Injections/Violations/Recoveries sum over runs.
	Injections uint64 `json:"injections"`
	Violations uint64 `json:"violations"`
	Recoveries uint64 `json:"recoveries"`
	// Verdict summarizes the row: detected-unsound, tolerated, silent,
	// clean, or no-injections.
	Verdict string       `json:"verdict"`
	Runs    []RunOutcome `json:"runs"`
}

// Report is the campaign document written by -out.
type Report struct {
	Schema     string            `json:"schema"`
	Strategies []string          `json:"strategies"`
	Classes    []string          `json:"classes"`
	Seeds      int               `json:"seeds"`
	BaseSeed   int64             `json:"base_seed"`
	Rate       float64           `json:"rate"`
	MaxPerRun  uint64            `json:"max_per_run,omitempty"`
	Ops        int               `json:"ops"`
	Cells      []Cell            `json:"cells"`
	Counters   []metrics.Counter `json:"counters,omitempty"`
	Strict     bool              `json:"strict"`
	// StrictFailures lists every expectation miss (empty on a pass).
	StrictFailures []string `json:"strict_failures,omitempty"`
}

func classify(r RunOutcome) string {
	switch {
	case r.Violations > 0:
		return "detected"
	case r.Injections > 0 && r.Recoveries > 0:
		return "tolerated"
	case r.Injections > 0:
		return "silent"
	}
	return "clean"
}

func verdict(c Cell) string {
	switch {
	case c.Silent > 0:
		return "silent"
	case c.Detected > 0:
		return "detected-unsound"
	case c.Tolerated > 0:
		return "tolerated"
	case c.Injections == 0 && c.Class != controlClass:
		return "no-injections"
	}
	return "clean"
}

// strictCheck applies the Reloaded expectation matrix and the universal
// rules (no silent rows anywhere; controls clean everywhere).
func strictCheck(cells []Cell) []string {
	// Which way each class must land against Reloaded: the first three
	// subvert the protocol invisibly to the revoker, so only the oracle can
	// catch them; the last two are infrastructure faults recovery absorbs.
	// shootdown-drop can legitimately land either way — the application may
	// or may not race the stale-TLB window before the retry heals it — so
	// it only has to avoid silence, which the universal rule covers.
	expect := map[string]string{
		"cap-dirty-loss":      "detected-unsound",
		"barrier-suppress":    "detected-unsound",
		"tag-stale-read":      "detected-unsound",
		"worker-crash":        "tolerated",
		"epoch-publish-delay": "tolerated",
	}
	var fails []string
	for _, c := range cells {
		if c.Silent > 0 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s: %d run(s) took injections with no detection and no recovery",
				c.Strategy, c.Class, c.Silent))
		}
		if c.Class == controlClass && c.Verdict != "clean" {
			fails = append(fails, fmt.Sprintf(
				"%s/%s: faults-disabled control is %s (%d violations)",
				c.Strategy, c.Class, c.Verdict, c.Violations))
		}
		if c.Strategy != revoke.Reloaded.String() || c.Class == controlClass {
			continue
		}
		if want, ok := expect[c.Class]; ok && c.Verdict != want {
			fails = append(fails, fmt.Sprintf(
				"%s/%s: verdict %s, want %s", c.Strategy, c.Class, c.Verdict, want))
		}
		if c.Injections == 0 {
			fails = append(fails, fmt.Sprintf(
				"%s/%s: fault class never fired — the hook is not wired", c.Strategy, c.Class))
		}
	}
	return fails
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("chaos: ")
	strategies := flag.String("strategies", "reloaded", "comma-separated strategies (see cmd/cornucopia) or 'all'")
	classes := flag.String("classes", "all", "comma-separated fault classes, 'all', or 'none' (control runs only)")
	seeds := flag.Int("seeds", 3, "runs per (strategy, class) cell")
	seed := flag.Int64("seed", 1, "base seed (run i uses seed+i*1000003 for workload and faults)")
	rate := flag.Float64("rate", 0, "per-opportunity injection probability (0 = every opportunity)")
	max := flag.Uint64("max", 8, "injection cap per class per run (0 = unbounded)")
	delay := flag.Uint64("delay", 0, "fault duration in cycles for time-shaped faults (0 = default)")
	ops := flag.Int("ops", 4000, "chaos workload churn steps per run")
	shared := cliflags.Register()
	out := flag.String("out", "", "write the campaign report JSON to this file")
	strict := flag.Bool("strict", false, "apply the Reloaded expectation matrix and exit non-zero on a miss")
	listClasses := flag.Bool("list-classes", false, "list fault classes and exit")
	flag.Parse()

	if *listClasses {
		for _, c := range fault.Classes() {
			fmt.Println(c)
		}
		return
	}

	// Host-side profiling (-cpuprofile/-memprofile): where the campaign
	// spends real time, not simulated cycles.
	stopProf, err := shared.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}

	var strats []revoke.Strategy
	if *strategies == "all" {
		strats = revoke.Strategies()
	} else {
		for _, name := range strings.Split(*strategies, ",") {
			s, err := revoke.ParseStrategy(name)
			if err != nil {
				log.Fatal(err)
			}
			strats = append(strats, s)
		}
	}
	var clss []string
	switch *classes {
	case "all":
		clss = fault.ClassNames()
	case controlClass:
		// Control-only campaign: every strategy runs with faults disabled,
		// so the oracle audits the protocols themselves.
	default:
		for _, name := range strings.Split(*classes, ",") {
			c, err := fault.ParseClass(name)
			if err != nil {
				log.Fatal(err)
			}
			clss = append(clss, c.String())
		}
	}
	if *seeds < 1 {
		log.Fatal("-seeds must be at least 1")
	}

	// Row order is (strategy, control-then-classes, seed): fully
	// deterministic, independent of completion order.
	type cellKey struct {
		strat revoke.Strategy
		class string
	}
	rowClasses := append([]string{controlClass}, clss...)
	var keys []cellKey
	jobs := map[cellKey][]expt.Job{}
	for _, s := range strats {
		for _, cls := range rowClasses {
			k := cellKey{s, cls}
			keys = append(keys, k)
			for i := 0; i < *seeds; i++ {
				cfg := harness.DefaultConfig()
				cfg.Seed = *seed + int64(i)*seedStride
				// The campaign regime: frequent epochs (small quarantine
				// floor) and a tight scheduler skew quantum so application
				// capability loads interleave with the concurrent sweep in
				// virtual time.
				cfg.Machine.Sim.SkewQuantum = 2_000
				cfg.QuarantineMin = 8 << 10
				cfg.Oracle = true
				if cls != controlClass {
					cfg.Fault = &fault.Spec{
						Seed:        cfg.Seed,
						Classes:     []string{cls},
						Rate:        *rate,
						MaxPerClass: *max,
						DelayCycles: *delay,
					}
				}
				cond := harness.Condition{
					Name: s.String(), Shimmed: true, Strategy: s, Workers: 3,
				}
				jobs[k] = append(jobs[k], expt.Job{
					Workload: expt.ChaosWorkload(*ops), Cond: cond, Cfg: cfg,
				})
			}
		}
	}

	ids := append([]string(nil), clss...)
	sort.Strings(ids)
	sortedStrats := make([]string, len(strats))
	for i, s := range strats {
		sortedStrats[i] = s.String()
	}
	sort.Strings(sortedStrats)
	grid := fmt.Sprintf("strategies=%s classes=%s seeds=%d seed=%d rate=%g max=%d delay=%d ops=%d",
		strings.Join(sortedStrats, ","), strings.Join(ids, ","),
		*seeds, *seed, *rate, *max, *delay, *ops)
	if shared.TraceEvents > 0 {
		// Ring depth shapes the snapshot a manifest caches; pin it like any
		// other grid flag.
		grid += fmt.Sprintf(" trace-events=%d", shared.TraceEvents)
	}
	manifest, err := shared.Manifest("chaos", grid)
	if err != nil {
		log.Fatal(err)
	}
	if manifest != nil {
		defer manifest.Close()
	}

	pcfg, live, err := shared.PoolConfig("chaos", manifest)
	if err != nil {
		log.Fatal(err)
	}
	if shared.TraceEvents > 0 {
		pcfg.Telemetry = &telemetry.Options{
			SampleEvery: telemetry.DefaultSampleEvery, TraceEvents: shared.TraceEvents,
		}
	}
	pool, closeExec, err := shared.NewExecutor("chaos", grid, pcfg, live)
	if err != nil {
		log.Fatal(err)
	}
	for _, k := range keys {
		pool.Prefetch(jobs[k])
	}

	rep := Report{
		Schema: Schema, Seeds: *seeds, BaseSeed: *seed,
		Rate: *rate, MaxPerRun: *max, Ops: *ops, Strict: *strict,
	}
	for _, s := range strats {
		rep.Strategies = append(rep.Strategies, s.String())
	}
	rep.Classes = clss

	var counters metrics.Counters
	failedJobs := 0
	for _, k := range keys {
		cell := Cell{Strategy: k.strat.String(), Class: k.class}
		for _, j := range jobs[k] {
			jr, err := pool.Get(j)
			if err != nil {
				log.Print(err)
				failedJobs++
				continue
			}
			ro := RunOutcome{Seed: jr.Seed}
			if jr.Fault != nil {
				ro.Injections = jr.Fault.Injections
			}
			if jr.Oracle != nil {
				ro.Violations = jr.Oracle.ViolationCount
			}
			if jr.Recovery != nil {
				ro.Recoveries = jr.Recovery.Total()
			}
			ro.Outcome = classify(ro)
			cell.Runs = append(cell.Runs, ro)
			cell.Injections += ro.Injections
			cell.Violations += ro.Violations
			cell.Recoveries += ro.Recoveries
			switch ro.Outcome {
			case "detected":
				cell.Detected++
			case "tolerated":
				cell.Tolerated++
			case "silent":
				cell.Silent++
			default:
				cell.Clean++
			}
		}
		cell.Verdict = verdict(cell)
		rep.Cells = append(rep.Cells, cell)
		counters.Add("injections:"+cell.Class, cell.Injections)
		counters.Add("violations:"+cell.Strategy, cell.Violations)
		counters.Add("recoveries:"+cell.Strategy, cell.Recoveries)
	}
	// Every Get has returned: drain the worker fleet (no-op under
	// -exec=local) before reporting.
	if err := closeExec(); err != nil {
		log.Printf("closing executor: %v", err)
	}
	if err := shared.WriteTimeline("chaos", pool); err != nil {
		log.Fatal(err)
	}
	rep.Counters = counters.Snapshot()
	if *strict {
		rep.StrictFailures = strictCheck(rep.Cells)
	}

	fmt.Printf("%-18s %-20s %-17s %5s %5s %5s\n",
		"STRATEGY", "CLASS", "VERDICT", "INJ", "VIOL", "RECOV")
	for _, c := range rep.Cells {
		fmt.Printf("%-18s %-20s %-17s %5d %5d %5d\n",
			c.Strategy, c.Class, c.Verdict, c.Injections, c.Violations, c.Recoveries)
	}
	st := pool.Stats()
	fmt.Printf("chaos: %d job(s) ran, %d from manifest, %d retried, %d failed\n",
		st.Executed, st.Cached, st.Retries, st.Failed)

	if *out != "" {
		b, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(b, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("chaos: wrote %s (schema %s)\n", *out, Schema)
	}

	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	shared.Finish(live)
	if len(rep.StrictFailures) > 0 {
		for _, f := range rep.StrictFailures {
			log.Printf("strict: %s", f)
		}
		os.Exit(1)
	}
	if failedJobs > 0 {
		os.Exit(1)
	}
}
