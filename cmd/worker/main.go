// Command worker is the execution half of a distributed campaign: it
// connects to a cmd/sweep or cmd/chaos coordinator (-exec=net), announces
// its sweep-kernel and sim-engine capabilities, and serves leases — each
// lease is one deterministic (workload, condition, seed) job, run through
// the exact internal/expt.RunJob path a local pool uses, under the
// kernel/engine/telemetry configuration the coordinator dictates. Results
// (or failures, classified like local ones) are reported back with the
// worker-side host cost; held leases are renewed by heartbeat so a killed
// worker's jobs are reclaimed and re-issued elsewhere.
//
// Usage:
//
//	worker -connect HOST:PORT [-name LABEL] [-parallel N] [-max-jobs N]
//	       [-hello-timeout D] [-reconnect-timeout D] [-cache FILE]
//	       [-crash-after-lease N]
//	       [-live ADDR] [-live-linger D] [-metrics FILE]
//	       [-netfault CLASSES] [-netfault-seed N] [-netfault-rate P]
//	       [-netfault-max N] [-netfault-delay D]
//
// -live serves this worker's own introspection endpoints (job outcomes on
// /jobs and /events, merged job telemetry and a single-worker fleet view
// on /metrics and /fleet) while it runs — the worker-side complement of
// the coordinator's -http server. -metrics writes the same OpenMetrics
// body to a file at exit, with or without -live.
//
// The worker exits 0 when the coordinator drains the campaign (or the
// coordinator stays unreachable past -reconnect-timeout after the worker
// joined — the coordinator exits as soon as its documents are written),
// and 1 on a protocol refusal or an unreachable coordinator.
//
// -crash-after-lease N is fault injection for the reclaim path: the
// worker dies (exit 2) immediately upon taking its Nth lease, without
// running or reporting it — the CI smoke uses it to prove a campaign
// survives losing a worker mid-lease.
//
// -cache FILE opens a worker-side result cache (an expt manifest,
// validated against the campaign's tool/grid at join): a worker that
// crashes and rejoins replays the keys it already completed instead of
// re-executing them.
//
// -netfault CLASSES arms deterministic worker-side network fault
// injection on every protocol request: a comma-separated subset of
// drop, delay, duplicate, reorder, reset, throttle (see
// internal/dist/netfault). The chaos smoke drives campaigns under these
// faults and asserts the canonical documents stay byte-identical.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/netfault"
	"repro/internal/expt/cliflags"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")
	connect := flag.String("connect", "", "coordinator address (required; host:port from sweep/chaos -exec=net)")
	name := flag.String("name", "", "worker label in coordinator output (default host:pid)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent leases to hold")
	maxJobs := flag.Int("max-jobs", 0, "exit after reporting this many results (0 = run until drained)")
	helloTimeout := flag.Duration("hello-timeout", 10*time.Second, "how long to retry the opening hello while the coordinator starts")
	reconnectTimeout := flag.Duration("reconnect-timeout", 5*time.Second, "how long to retry a silent coordinator before treating the campaign as over")
	cache := flag.String("cache", "", "worker-side result cache file: replay completed keys after a rejoin instead of re-executing")
	crashAfterLease := flag.Int("crash-after-lease", 0, "fault injection: die on taking the Nth lease, without reporting (0 = off)")
	nfClasses := flag.String("netfault", "", "worker-side network fault classes to inject (comma-separated: drop,delay,duplicate,reorder,reset,throttle; empty = off)")
	nfSeed := flag.Int64("netfault-seed", 1, "seed for the deterministic network fault decision stream")
	nfRate := flag.Float64("netfault-rate", 0, "per-opportunity network fault probability (0 = netfault default)")
	nfMax := flag.Uint64("netfault-max", 0, "cap injections per fault class (0 = unbounded)")
	nfDelay := flag.Duration("netfault-delay", 0, "injected network delay/throttle pause (0 = netfault default)")
	lf := cliflags.RegisterLive()
	flag.Parse()

	if *connect == "" {
		log.Fatal("-connect is required (start a coordinator with sweep/chaos -exec=net)")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var faults *netfault.Spec
	if *nfClasses != "" {
		faults = &netfault.Spec{
			Seed:        *nfSeed,
			Classes:     strings.Split(*nfClasses, ","),
			Rate:        *nfRate,
			MaxPerClass: *nfMax,
			Delay:       *nfDelay,
		}
	}
	live, err := lf.Start("worker")
	if err != nil {
		log.Fatal(err)
	}
	// hostMS sums the observed job costs for the single-row fleet view;
	// Observe runs on lease-serving goroutines, so guard it.
	var mu sync.Mutex
	var hostMS float64
	w := dist.NewWorker(dist.WorkerConfig{
		Connect:          *connect,
		Name:             *name,
		Parallel:         *parallel,
		MaxJobs:          *maxJobs,
		HelloTimeout:     *helloTimeout,
		ReconnectTimeout: *reconnectTimeout,
		CachePath:        *cache,
		CrashAfterLease:  *crashAfterLease,
		Faults:           faults,
		Logf: func(format string, args ...any) {
			log.Printf(format, args...)
		},
		Observe: func(u telemetry.JobUpdate) {
			mu.Lock()
			hostMS += u.HostMS
			mu.Unlock()
			live.Observe(u)
		},
	})
	live.SetMetricsSource(func() *telemetry.Snapshot {
		return telemetry.Merge(w.Snapshots())
	})
	live.SetFleetSource(func() telemetry.FleetStats {
		fw := telemetry.FleetWorker{
			ID: "worker", Name: *name,
			Jobs: uint64(w.Reported()), CacheHits: uint64(w.CacheHits()),
		}
		mu.Lock()
		fw.HostMS = hostMS
		mu.Unlock()
		for _, k := range w.Snapshots() {
			var wall uint64
			for _, c := range k.Snap.CoreClock {
				if c > wall {
					wall = c
				}
			}
			fw.SimCycles += wall
			fw.TraceEvents += uint64(len(k.Snap.Trace))
			fw.TraceDropped += k.Snap.TraceDropped
		}
		return telemetry.FleetStats{Workers: []telemetry.FleetWorker{fw}}.Totaled()
	})
	runErr := w.Run()
	if err := lf.Finish(live); err != nil {
		log.Print(err)
	}
	if runErr != nil {
		if runErr == dist.ErrCrashed {
			log.Print(runErr)
			os.Exit(2)
		}
		log.Fatal(runErr)
	}
}
