// Command worker is the execution half of a distributed campaign: it
// connects to a cmd/sweep or cmd/chaos coordinator (-exec=net), announces
// its sweep-kernel and sim-engine capabilities, and serves leases — each
// lease is one deterministic (workload, condition, seed) job, run through
// the exact internal/expt.RunJob path a local pool uses, under the
// kernel/engine/telemetry configuration the coordinator dictates. Results
// (or failures, classified like local ones) are reported back with the
// worker-side host cost; held leases are renewed by heartbeat so a killed
// worker's jobs are reclaimed and re-issued elsewhere.
//
// Usage:
//
//	worker -connect HOST:PORT [-name LABEL] [-parallel N] [-max-jobs N]
//	       [-hello-timeout D] [-reconnect-timeout D] [-cache FILE]
//	       [-crash-after-lease N]
//	       [-netfault CLASSES] [-netfault-seed N] [-netfault-rate P]
//	       [-netfault-max N] [-netfault-delay D]
//
// The worker exits 0 when the coordinator drains the campaign (or the
// coordinator stays unreachable past -reconnect-timeout after the worker
// joined — the coordinator exits as soon as its documents are written),
// and 1 on a protocol refusal or an unreachable coordinator.
//
// -crash-after-lease N is fault injection for the reclaim path: the
// worker dies (exit 2) immediately upon taking its Nth lease, without
// running or reporting it — the CI smoke uses it to prove a campaign
// survives losing a worker mid-lease.
//
// -cache FILE opens a worker-side result cache (an expt manifest,
// validated against the campaign's tool/grid at join): a worker that
// crashes and rejoins replays the keys it already completed instead of
// re-executing them.
//
// -netfault CLASSES arms deterministic worker-side network fault
// injection on every protocol request: a comma-separated subset of
// drop, delay, duplicate, reorder, reset, throttle (see
// internal/dist/netfault). The chaos smoke drives campaigns under these
// faults and asserts the canonical documents stay byte-identical.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/netfault"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")
	connect := flag.String("connect", "", "coordinator address (required; host:port from sweep/chaos -exec=net)")
	name := flag.String("name", "", "worker label in coordinator output (default host:pid)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent leases to hold")
	maxJobs := flag.Int("max-jobs", 0, "exit after reporting this many results (0 = run until drained)")
	helloTimeout := flag.Duration("hello-timeout", 10*time.Second, "how long to retry the opening hello while the coordinator starts")
	reconnectTimeout := flag.Duration("reconnect-timeout", 5*time.Second, "how long to retry a silent coordinator before treating the campaign as over")
	cache := flag.String("cache", "", "worker-side result cache file: replay completed keys after a rejoin instead of re-executing")
	crashAfterLease := flag.Int("crash-after-lease", 0, "fault injection: die on taking the Nth lease, without reporting (0 = off)")
	nfClasses := flag.String("netfault", "", "worker-side network fault classes to inject (comma-separated: drop,delay,duplicate,reorder,reset,throttle; empty = off)")
	nfSeed := flag.Int64("netfault-seed", 1, "seed for the deterministic network fault decision stream")
	nfRate := flag.Float64("netfault-rate", 0, "per-opportunity network fault probability (0 = netfault default)")
	nfMax := flag.Uint64("netfault-max", 0, "cap injections per fault class (0 = unbounded)")
	nfDelay := flag.Duration("netfault-delay", 0, "injected network delay/throttle pause (0 = netfault default)")
	flag.Parse()

	if *connect == "" {
		log.Fatal("-connect is required (start a coordinator with sweep/chaos -exec=net)")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	var faults *netfault.Spec
	if *nfClasses != "" {
		faults = &netfault.Spec{
			Seed:        *nfSeed,
			Classes:     strings.Split(*nfClasses, ","),
			Rate:        *nfRate,
			MaxPerClass: *nfMax,
			Delay:       *nfDelay,
		}
	}
	w := dist.NewWorker(dist.WorkerConfig{
		Connect:          *connect,
		Name:             *name,
		Parallel:         *parallel,
		MaxJobs:          *maxJobs,
		HelloTimeout:     *helloTimeout,
		ReconnectTimeout: *reconnectTimeout,
		CachePath:        *cache,
		CrashAfterLease:  *crashAfterLease,
		Faults:           faults,
		Logf: func(format string, args ...any) {
			log.Printf(format, args...)
		},
	})
	if err := w.Run(); err != nil {
		if err == dist.ErrCrashed {
			log.Print(err)
			os.Exit(2)
		}
		log.Fatal(err)
	}
}
