// Command worker is the execution half of a distributed campaign: it
// connects to a cmd/sweep or cmd/chaos coordinator (-exec=net), announces
// its sweep-kernel and sim-engine capabilities, and serves leases — each
// lease is one deterministic (workload, condition, seed) job, run through
// the exact internal/expt.RunJob path a local pool uses, under the
// kernel/engine/telemetry configuration the coordinator dictates. Results
// (or failures, classified like local ones) are reported back with the
// worker-side host cost; held leases are renewed by heartbeat so a killed
// worker's jobs are reclaimed and re-issued elsewhere.
//
// Usage:
//
//	worker -connect HOST:PORT [-name LABEL] [-parallel N] [-max-jobs N]
//	       [-hello-timeout D] [-crash-after-lease N]
//
// The worker exits 0 when the coordinator drains the campaign (or the
// coordinator vanishes after the worker joined — the coordinator exits as
// soon as its documents are written), and 1 on a protocol refusal or an
// unreachable coordinator.
//
// -crash-after-lease N is fault injection for the reclaim path: the
// worker dies (exit 2) immediately upon taking its Nth lease, without
// running or reporting it — the CI smoke uses it to prove a campaign
// survives losing a worker mid-lease.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/dist"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("worker: ")
	connect := flag.String("connect", "", "coordinator address (required; host:port from sweep/chaos -exec=net)")
	name := flag.String("name", "", "worker label in coordinator output (default host:pid)")
	parallel := flag.Int("parallel", runtime.NumCPU(), "concurrent leases to hold")
	maxJobs := flag.Int("max-jobs", 0, "exit after reporting this many results (0 = run until drained)")
	helloTimeout := flag.Duration("hello-timeout", 10*time.Second, "how long to retry the opening hello while the coordinator starts")
	crashAfterLease := flag.Int("crash-after-lease", 0, "fault injection: die on taking the Nth lease, without reporting (0 = off)")
	flag.Parse()

	if *connect == "" {
		log.Fatal("-connect is required (start a coordinator with sweep/chaos -exec=net)")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	w := dist.NewWorker(dist.WorkerConfig{
		Connect:         *connect,
		Name:            *name,
		Parallel:        *parallel,
		MaxJobs:         *maxJobs,
		HelloTimeout:    *helloTimeout,
		CrashAfterLease: *crashAfterLease,
		Logf: func(format string, args ...any) {
			log.Printf(format, args...)
		},
	})
	if err := w.Run(); err != nil {
		if err == dist.ErrCrashed {
			log.Print(err)
			os.Exit(2)
		}
		log.Fatal(err)
	}
}
