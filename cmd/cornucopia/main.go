// Command cornucopia runs one workload under one temporal-safety condition
// and prints every measured quantity: the general-purpose entry point for
// exploring the simulator.
//
// Usage:
//
//	cornucopia [-workload NAME] [-strategy NAME] [-scale N] [-seed N] [-workers N]
//	           [-trace FILE] [-trace-format chrome|csv] [-trace-events N]
//	           [-prof-folded FILE] [-prof-pprof FILE] [-metrics-out FILE]
//	           [-series-csv FILE] [-sample-every N]
//
// Workloads: any SPEC surrogate name (astar, bzip2, gobmk, hmmer,
// libquantum, omnetpp, sjeng, xalancbmk), pgbench, or qps. Strategies:
// baseline, paintsync, cherivoke, cornucopia, reloaded.
//
// -trace runs the workload with the structured tracer enabled and writes
// the event stream to FILE: Chrome trace_event JSON (open in Perfetto or
// chrome://tracing) by default or when FILE ends in .json, CSV when it
// ends in .csv or -trace-format says so.
//
// The telemetry flags arm the cycle profiler and metrics registry
// (internal/telemetry) for the run: -prof-folded writes folded
// flame-graph stacks, -prof-pprof a gzipped pprof proto, -metrics-out
// the final metric values as OpenMetrics text, and -series-csv the
// sampled time series. The profile is conservation-checked: every
// simulated cycle on every core is attributed exactly once.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/metrics"
	"repro/internal/revoke"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
	"repro/internal/workload/pgbench"
	"repro/internal/workload/qps"
	"repro/internal/workload/spec"
)

func condition(name string, workers int) (harness.Condition, error) {
	if strings.EqualFold(strings.TrimSpace(name), "baseline") {
		return harness.Baseline(), nil
	}
	s, err := revoke.ParseStrategy(name)
	if err != nil {
		return harness.Condition{}, err
	}
	cond := harness.Condition{Name: s.String(), Shimmed: true, Strategy: s, RevokerCores: []int{2}}
	// Only the concurrent sweepers parallelize; Paint+sync never sweeps and
	// CHERIvoke sweeps under the STW pause.
	if s != revoke.PaintSync && s != revoke.CHERIvoke {
		cond.Workers = workers
	}
	return cond, nil
}

// writeTrace exports the run's trace: chrome JSON or CSV, chosen by the
// explicit format or the output file's extension.
func writeTrace(r *harness.Result, path, format string) error {
	if format == "" {
		if strings.HasSuffix(path, ".csv") {
			format = "csv"
		} else {
			format = "chrome"
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch format {
	case "chrome", "json":
		return r.Trace.WriteChrome(f, r.HzGHz)
	case "csv":
		return r.Trace.WriteCSV(f)
	}
	return fmt.Errorf("unknown trace format %q", format)
}

// writeTelemetry snapshots the recorder, verifies cycle conservation,
// and writes the requested exports.
func writeTelemetry(tl *telemetry.Telemetry, folded, pprofOut, metricsOut, seriesCSV string) error {
	snap := tl.Snapshot()
	if err := snap.CheckConservation(); err != nil {
		return err
	}
	write := func(path string, fn func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("telemetry  wrote %s\n", path)
		return nil
	}
	if err := write(folded, func(f *os.File) error { return snap.WriteFolded(f) }); err != nil {
		return err
	}
	if err := write(pprofOut, func(f *os.File) error { return snap.WritePprof(f) }); err != nil {
		return err
	}
	if err := write(metricsOut, func(f *os.File) error { return snap.WriteOpenMetrics(f, true) }); err != nil {
		return err
	}
	return write(seriesCSV, func(f *os.File) error {
		return telemetry.WriteSeriesCSV(f, []telemetry.Keyed{{Key: "run", Snap: snap}})
	})
}

func pick(name string, cfg *harness.Config) (workload.Workload, error) {
	switch strings.ToLower(name) {
	case "pgbench":
		*cfg = harness.PgbenchConfig()
		return pgbench.New(4000), nil
	case "qps", "grpc-qps":
		*cfg = harness.QPSConfig()
		return qps.New(1_000_000_000, 100_000_000), nil
	}
	ps := spec.ByName(name)
	if len(ps) == 0 {
		return nil, fmt.Errorf("unknown workload %q", name)
	}
	return ps[0], nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("cornucopia: ")
	wl := flag.String("workload", "xalancbmk", "workload name")
	strat := flag.String("strategy", "reloaded", "temporal-safety strategy")
	scale := flag.Uint64("scale", 0, "override footprint divisor (0 = per-workload default)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "background revoker threads (§7.1)")
	timeline := flag.Bool("timeline", false, "print a per-epoch timeline")
	traceOut := flag.String("trace", "", "write a structured event trace to this file")
	traceFormat := flag.String("trace-format", "", "trace format: chrome or csv (default by file extension)")
	traceEvents := flag.Int("trace-events", 1<<19, "trace ring capacity (most recent events kept)")
	profFolded := flag.String("prof-folded", "", "write the cycle profile as folded flame-graph stacks to this file")
	profPprof := flag.String("prof-pprof", "", "write the cycle profile as a gzipped pprof proto to this file")
	metricsOut := flag.String("metrics-out", "", "write the final metrics in OpenMetrics text format to this file")
	seriesCSV := flag.String("series-csv", "", "write the sampled metrics time series as CSV to this file")
	sampleEvery := flag.Uint64("sample-every", telemetry.DefaultSampleEvery, "time-series sampling interval, simulated cycles")
	flag.Parse()

	cfg := harness.SpecConfig()
	w, err := pick(*wl, &cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *scale != 0 {
		cfg.Scale = *scale
	}
	cfg.Seed = *seed
	cond, err := condition(*strat, *workers)
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		cfg.Trace = trace.New(*traceEvents)
	}
	wantTelem := *profFolded != "" || *profPprof != "" || *metricsOut != "" || *seriesCSV != ""
	if wantTelem {
		cfg.Telem = telemetry.New(telemetry.Options{SampleEvery: *sampleEvery})
	}

	r, err := harness.Run(w, cond, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *traceOut != "" {
		if err := writeTrace(r, *traceOut, *traceFormat); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace      %d events → %s (%d dropped by ring wrap)\n",
			r.Trace.Len(), *traceOut, r.Trace.Dropped())
	}
	if wantTelem {
		if err := writeTelemetry(cfg.Telem, *profFolded, *profPprof, *metricsOut, *seriesCSV); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("workload   %s under %s (scale 1/%d, seed %d)\n", r.Workload, r.Condition, cfg.Scale, cfg.Seed)
	fmt.Printf("wall       %.3f ms   (%d cycles)\n", r.Millis(r.WallCycles), r.WallCycles)
	fmt.Printf("cpu total  %.3f ms   app thread %.3f ms\n", r.Millis(r.CPUCycles), r.Millis(r.AppCPUCycles))
	fmt.Printf("DRAM       %d transactions (app %d, alloc %d, revoker %d, kernel %d)\n",
		r.DRAMTotal, r.DRAMByAgent[0], r.DRAMByAgent[1], r.DRAMByAgent[2], r.DRAMByAgent[3])
	fmt.Printf("peak RSS   %d pages (%.1f MiB)\n", r.PeakRSSPages, float64(r.PeakRSSPages)*4096/(1<<20))
	fmt.Printf("heap       allocs %d frees %d peak live %.2f MiB\n",
		r.Heap.Allocs, r.Heap.Frees, float64(r.Heap.PeakLiveBytes)/(1<<20))
	if cond.Shimmed {
		fmt.Printf("quarantine total %.2f MiB, peak %.2f MiB, triggers %d, blocks %d (%.3f ms)\n",
			float64(r.Quar.TotalQuarantined)/(1<<20), float64(r.Quar.PeakQuarantinedBytes)/(1<<20),
			r.Quar.Triggers, r.Quar.Blocks, r.Millis(r.Quar.BlockCycles))
		fmt.Printf("mem events cap loads %d, cap stores %d, gen faults %d (%.3f ms), TLB refills %d\n",
			r.Proc.CapLoads, r.Proc.CapStores, r.Proc.GenFaults, r.Millis(r.Proc.GenFaultCycles), r.Proc.TLBRefills)
		fmt.Printf("epochs     %d\n", len(r.Epochs))
		if len(r.Epochs) > 0 {
			var stw, conc, faults metrics.Samples
			var visited, revoked uint64
			for _, e := range r.Epochs {
				stw.AddU(e.STWCycles)
				conc.AddU(e.ConcurrentCycles)
				faults.AddU(e.FaultCycles)
				visited += e.CapsVisited
				revoked += e.CapsRevoked
			}
			hz := r.HzGHz * 1e6
			fmt.Printf("  stop-the-world  med %.4f ms  max %.4f ms\n", stw.Median()/hz, stw.Max()/hz)
			fmt.Printf("  concurrent      med %.4f ms  max %.4f ms\n", conc.Median()/hz, conc.Max()/hz)
			fmt.Printf("  faults/epoch    med %.4f ms  max %.4f ms\n", faults.Median()/hz, faults.Max()/hz)
			fmt.Printf("  caps inspected  %d, revoked %d\n", visited, revoked)
		}
	}
	if *timeline && len(r.Epochs) > 0 {
		hz := r.HzGHz * 1e6
		fmt.Println("\nepoch timeline (ms):")
		fmt.Printf("  %5s %10s %9s %9s %9s %7s %8s %8s\n",
			"epoch", "start", "stw", "concur", "faults", "nfault", "pages", "revoked")
		for _, e := range r.Epochs {
			fmt.Printf("  %5d %10.3f %9.4f %9.4f %9.4f %7d %8d %8d\n",
				e.Epoch, float64(e.StartCycle)/hz, float64(e.STWCycles)/hz,
				float64(e.ConcurrentCycles)/hz, float64(e.FaultCycles)/hz,
				e.FaultCount, e.PagesVisited, e.CapsRevoked)
		}
	}
	if r.Lat.N() > 0 {
		hz := r.HzGHz * 1e6
		fmt.Printf("latency    n=%d p50=%.3f p90=%.3f p99=%.3f p99.9=%.3f ms\n",
			r.Lat.N(), r.Lat.Percentile(50)/hz, r.Lat.Percentile(90)/hz,
			r.Lat.Percentile(99)/hz, r.Lat.Percentile(99.9)/hz)
	}
}
