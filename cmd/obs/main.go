// Command obs is the campaign postmortem tool: it joins the artifacts a
// campaign leaves behind — the -journal event log, the -resume manifest,
// and the telemetry snapshots riding inside it — into reports a human
// reads after the fact, plus schema validation and canonicalization for
// CI byte-identity checks.
//
// Usage:
//
//	obs report   -journal FILE [-manifest FILE] [-format text|json|html]
//	             [-out FILE] [-top N]
//	obs diff     [-max-regress PCT] OLD.json NEW.json
//	obs validate -journal FILE
//	obs canon    -journal FILE [-out FILE]
//	obs timeline -manifest FILE [-journal FILE] [-canonical] [-out FILE]
//
// report builds the campaign postmortem: per-worker utilization, host
// cost by (workload, condition), the incident timeline (retries, lease
// reclaims, breaker trips, evictions, injected network faults, local
// fallback), coordinated-omission-correct job latency percentiles
// (submit-to-result, queue wait included), and — when -manifest is given
// — the top simulated-cycle attribution stacks from the merged telemetry.
//
// diff compares two BENCH_host.json documents (cmd/hostbench): each
// benchmark's ns/op and each headline speedup ratio, failing (exit 1)
// when a benchmark slows down or a ratio drops by more than -max-regress
// percent.
//
// validate checks a journal against the cornucopia-journal/v1 schema:
// header present, sequence numbers strictly increasing, host timestamps
// monotone, every kind known, every result preceded by its submit.
//
// canon writes the journal's canonical form: only successful job results,
// host-side metadata stripped, sorted by job key — byte-identical between
// a local pool run and a distributed run of the same seeded grid.
//
// timeline rebuilds the merged Chrome/Perfetto timeline from a manifest
// (the same output as sweep/chaos -timeline, but after the fact); with
// -journal the jobs are attributed to the workers that ran them.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
	"repro/internal/journal"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  obs report   -journal FILE [-manifest FILE] [-format text|json|html] [-out FILE] [-top N]
  obs diff     [-max-regress PCT] OLD.json NEW.json
  obs validate -journal FILE
  obs canon    -journal FILE [-out FILE]
  obs timeline -manifest FILE [-journal FILE] [-canonical] [-out FILE]`)
	os.Exit(2)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("obs: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "report":
		cmdReport(os.Args[2:])
	case "diff":
		cmdDiff(os.Args[2:])
	case "validate":
		cmdValidate(os.Args[2:])
	case "canon":
		cmdCanon(os.Args[2:])
	case "timeline":
		cmdTimeline(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
	}
}

// outFile resolves -out: stdout when empty or "-".
func outFile(path string) (*os.File, func() error, error) {
	if path == "" || path == "-" {
		return os.Stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

func cmdValidate(args []string) {
	fs := flag.NewFlagSet("obs validate", flag.ExitOnError)
	jpath := fs.String("journal", "", "campaign journal to validate (required)")
	fs.Parse(args)
	if *jpath == "" && fs.NArg() == 1 {
		*jpath = fs.Arg(0)
	}
	if *jpath == "" {
		log.Fatal("validate: -journal FILE is required")
	}
	j, err := journal.Read(*jpath)
	if err != nil {
		log.Fatalf("validate: %v", err)
	}
	if err := j.Validate(); err != nil {
		log.Fatalf("validate: %s: %v", *jpath, err)
	}
	fmt.Printf("%s: valid %s journal: tool=%s %d event(s), %d canonical result(s)\n",
		*jpath, j.Meta.Schema, j.Meta.Tool, len(j.Events), len(j.Canonical()))
}

func cmdCanon(args []string) {
	fs := flag.NewFlagSet("obs canon", flag.ExitOnError)
	jpath := fs.String("journal", "", "campaign journal to canonicalize (required)")
	out := fs.String("out", "", "write the canonical journal here (default stdout)")
	fs.Parse(args)
	if *jpath == "" && fs.NArg() == 1 {
		*jpath = fs.Arg(0)
	}
	if *jpath == "" {
		log.Fatal("canon: -journal FILE is required")
	}
	j, err := journal.Read(*jpath)
	if err != nil {
		log.Fatalf("canon: %v", err)
	}
	w, closeOut, err := outFile(*out)
	if err != nil {
		log.Fatalf("canon: %v", err)
	}
	if err := j.WriteCanonical(w); err != nil {
		log.Fatalf("canon: %v", err)
	}
	if err := closeOut(); err != nil {
		log.Fatalf("canon: %v", err)
	}
}

func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("obs timeline", flag.ExitOnError)
	mpath := fs.String("manifest", "", "campaign manifest holding the completed jobs (required)")
	jpath := fs.String("journal", "", "campaign journal for worker attribution (optional)")
	canonical := fs.Bool("canonical", false, "strip host metadata: one deterministic campaign track")
	out := fs.String("out", "", "write the timeline JSON here (default stdout)")
	fs.Parse(args)
	if *mpath == "" {
		log.Fatal("timeline: -manifest FILE is required")
	}
	m, err := expt.OpenManifest(*mpath)
	if err != nil {
		log.Fatalf("timeline: %v", err)
	}
	defer m.Close()

	// Worker attribution: the journal's job-report events say which worker
	// delivered each key; join events map worker ids to display names.
	workers := map[string]string{}
	if *jpath != "" {
		j, err := journal.Read(*jpath)
		if err != nil {
			log.Fatalf("timeline: %v", err)
		}
		names := map[string]string{}
		for _, ev := range j.Events {
			switch ev.Kind {
			case journal.KindWorkerJoin:
				names[ev.Worker] = ev.Detail
			case journal.KindJobReport:
				if ev.Status == "ran" || ev.Status == "cached" {
					name := names[ev.Worker]
					if name == "" {
						name = ev.Worker
					}
					workers[ev.Key] = name
				}
			}
		}
	}

	var jobs []journal.TimelineJob
	for _, c := range m.Entries() {
		r := c.Result
		if r == nil {
			continue
		}
		tj := journal.TimelineJob{
			Key: c.Key, Workload: r.Workload, Condition: r.Condition, Seed: r.Seed,
			Worker: workers[c.Key],
			HostMS: float64(c.Host.Microseconds()) / 1e3,
			WallCycles: r.WallCycles, HzGHz: r.HzGHz,
		}
		if r.Telem != nil {
			tj.Trace = r.Telem.Trace
			tj.TraceDropped = r.Telem.TraceDropped
		}
		jobs = append(jobs, tj)
	}
	w, closeOut, err := outFile(*out)
	if err != nil {
		log.Fatalf("timeline: %v", err)
	}
	if err := journal.WriteTimeline(w, jobs, *canonical); err != nil {
		log.Fatalf("timeline: %v", err)
	}
	if err := closeOut(); err != nil {
		log.Fatalf("timeline: %v", err)
	}
	if *out != "" && *out != "-" {
		fmt.Fprintf(os.Stderr, "obs: wrote %s (%d job track(s))\n", *out, len(jobs))
	}
}
