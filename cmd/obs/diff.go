package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
)

// benchDoc mirrors cmd/hostbench's BENCH_host.json document
// (cornucopia-hostbench/v1) closely enough to diff it.
type benchDoc struct {
	Schema     string `json:"schema"`
	Go         string `json:"go"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Benchmarks []struct {
		Name    string  `json:"name"`
		Iters   int     `json:"iters"`
		NsPerOp float64 `json:"ns_per_op"`
	} `json:"benchmarks"`
	Ratios map[string]struct {
		Baseline  string  `json:"baseline"`
		Contender string  `json:"contender"`
		Speedup   float64 `json:"speedup"`
	} `json:"ratios"`
}

// hostbenchSchema is the document schema diff accepts.
const hostbenchSchema = "cornucopia-hostbench/v1"

func loadBenchDoc(path string) (*benchDoc, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc benchDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != hostbenchSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, hostbenchSchema)
	}
	return &doc, nil
}

func cmdDiff(args []string) {
	fs := flag.NewFlagSet("obs diff", flag.ExitOnError)
	maxRegress := fs.Float64("max-regress", 10,
		"fail when a benchmark slows down, or a headline ratio drops, by more than this percent")
	fs.Parse(args)
	if fs.NArg() != 2 {
		log.Fatal("diff: want exactly two arguments: OLD.json NEW.json")
	}
	oldDoc, err := loadBenchDoc(fs.Arg(0))
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	newDoc, err := loadBenchDoc(fs.Arg(1))
	if err != nil {
		log.Fatalf("diff: %v", err)
	}
	if oldDoc.GOARCH != newDoc.GOARCH || oldDoc.GOOS != newDoc.GOOS {
		fmt.Printf("note: comparing across platforms (%s/%s vs %s/%s); host numbers are not like-for-like\n",
			oldDoc.GOOS, oldDoc.GOARCH, newDoc.GOOS, newDoc.GOARCH)
	}

	oldNS := map[string]float64{}
	for _, b := range oldDoc.Benchmarks {
		oldNS[b.Name] = b.NsPerOp
	}
	failed := false
	fmt.Printf("%-24s %14s %14s %9s\n", "BENCHMARK", "OLD ns/op", "NEW ns/op", "DELTA")
	for _, b := range newDoc.Benchmarks {
		old, ok := oldNS[b.Name]
		if !ok {
			fmt.Printf("%-24s %14s %14.1f %9s\n", b.Name, "-", b.NsPerOp, "new")
			continue
		}
		delete(oldNS, b.Name)
		deltaPct := (b.NsPerOp - old) / old * 100
		mark := ""
		if deltaPct > *maxRegress {
			mark = "  REGRESSION"
			failed = true
		}
		fmt.Printf("%-24s %14.1f %14.1f %+8.1f%%%s\n", b.Name, old, b.NsPerOp, deltaPct, mark)
	}
	gone := make([]string, 0, len(oldNS))
	for name := range oldNS {
		gone = append(gone, name)
	}
	sort.Strings(gone)
	for _, name := range gone {
		fmt.Printf("%-24s %14.1f %14s %9s\n", name, oldNS[name], "-", "gone")
	}

	rkeys := make([]string, 0, len(newDoc.Ratios))
	for k := range newDoc.Ratios {
		rkeys = append(rkeys, k)
	}
	sort.Strings(rkeys)
	if len(rkeys) > 0 {
		fmt.Printf("\n%-24s %10s %10s %9s\n", "RATIO", "OLD", "NEW", "DELTA")
		for _, k := range rkeys {
			nr := newDoc.Ratios[k]
			or, ok := oldDoc.Ratios[k]
			if !ok {
				fmt.Printf("%-24s %10s %9.2fx %9s\n", k, "-", nr.Speedup, "new")
				continue
			}
			dropPct := (or.Speedup - nr.Speedup) / or.Speedup * 100
			mark := ""
			if dropPct > *maxRegress {
				mark = "  REGRESSION"
				failed = true
			}
			fmt.Printf("%-24s %9.2fx %9.2fx %+8.1f%%%s\n", k, or.Speedup, nr.Speedup, -dropPct, mark)
		}
	}

	if failed {
		fmt.Printf("\ndiff: regression beyond the %.1f%% threshold\n", *maxRegress)
		os.Exit(1)
	}
	fmt.Printf("\ndiff: within the %.1f%% threshold\n", *maxRegress)
}
