package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"html/template"
	"io"
	"log"
	"math"
	"sort"
	"strings"

	"repro/internal/expt"
	"repro/internal/journal"
	"repro/internal/telemetry"
)

// ReportSchema versions the JSON form of the postmortem report.
const ReportSchema = "cornucopia-obs/v1"

// Report is the campaign postmortem, assembled from the journal (always)
// and the manifest's telemetry snapshots (when given).
type Report struct {
	Schema string `json:"schema"`
	Tool   string `json:"tool"`
	Grid   string `json:"grid"`
	Events int    `json:"events"`
	// WallMS spans the first to the last journal event, host clock.
	WallMS float64 `json:"wall_ms"`

	Jobs    JobsSummary `json:"jobs"`
	Latency *Latency    `json:"latency,omitempty"`
	Workers []WorkerRow `json:"workers,omitempty"`
	Costs   []CostRow   `json:"costs,omitempty"`
	// Incidents is everything that went wrong or degraded, in order:
	// retries, lease reclaims, breaker trips, evictions, injected network
	// faults, local fallback.
	Incidents []Incident `json:"incidents,omitempty"`
	// TopStacks is the simulated-cycle attribution from the manifest's
	// merged telemetry (empty without -manifest).
	TopStacks    []StackRow `json:"top_stacks,omitempty"`
	TraceDropped uint64     `json:"trace_dropped,omitempty"`
}

// JobsSummary counts journal job outcomes.
type JobsSummary struct {
	Submitted int `json:"submitted"`
	Ran       int `json:"ran"`
	Cached    int `json:"cached"`
	Failed    int `json:"failed"`
	Retries   int `json:"retries"`
}

// Latency is the coordinated-omission-correct job latency distribution:
// each sample spans a job's submit event to its result event on the
// coordinator's host clock, so queue wait — the part a per-job timer
// omits — is included.
type Latency struct {
	Count  int     `json:"count"`
	P50MS  float64 `json:"p50_ms"`
	P99MS  float64 `json:"p99_ms"`
	P999MS float64 `json:"p999_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// WorkerRow is one worker's share of the campaign. UtilPct is its summed
// job host-milliseconds over the campaign wall clock — above 100% means
// the worker held concurrent leases.
type WorkerRow struct {
	Worker  string  `json:"worker"`
	Name    string  `json:"name,omitempty"`
	Jobs    int     `json:"jobs"`
	Cached  int     `json:"cached,omitempty"`
	Failed  int     `json:"failed,omitempty"`
	HostMS  float64 `json:"host_ms"`
	UtilPct float64 `json:"util_pct"`
	Evicted bool    `json:"evicted,omitempty"`
}

// CostRow is the host cost of one (workload, condition) grid row.
type CostRow struct {
	Workload  string  `json:"workload"`
	Condition string  `json:"condition"`
	Jobs      int     `json:"jobs"`
	HostMS    float64 `json:"host_ms"`
	VCycles   uint64  `json:"vcycles"`
}

// Incident is one degraded-mode journal event.
type Incident struct {
	HostNS  int64  `json:"host_ns"`
	Kind    string `json:"kind"`
	Worker  string `json:"worker,omitempty"`
	Key     string `json:"key,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Err     string `json:"err,omitempty"`
	Count   uint64 `json:"count,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
}

// StackRow is one attribution stack of the merged cycle profile.
type StackRow struct {
	Stack    string  `json:"stack"`
	Cycles   uint64  `json:"cycles"`
	SharePct float64 `json:"share_pct"`
}

func cmdReport(args []string) {
	fs := flag.NewFlagSet("obs report", flag.ExitOnError)
	jpath := fs.String("journal", "", "campaign journal (required)")
	mpath := fs.String("manifest", "", "campaign manifest for simulated-cycle attribution (optional)")
	format := fs.String("format", "text", "output format: text, json, or html")
	out := fs.String("out", "", "write the report here (default stdout)")
	top := fs.Int("top", 10, "attribution stacks to include")
	fs.Parse(args)
	if *jpath == "" && fs.NArg() == 1 {
		*jpath = fs.Arg(0)
	}
	if *jpath == "" {
		log.Fatal("report: -journal FILE is required")
	}
	j, err := journal.Read(*jpath)
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	var man *expt.Manifest
	if *mpath != "" {
		if man, err = expt.OpenManifest(*mpath); err != nil {
			log.Fatalf("report: %v", err)
		}
		defer man.Close()
	}
	rep := BuildReport(j, man, *top)

	w, closeOut, err := outFile(*out)
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	switch *format {
	case "text":
		err = rep.WriteText(w)
	case "json":
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep)
	case "html":
		err = rep.WriteHTML(w)
	default:
		log.Fatalf("report: unknown -format %q (want text, json, or html)", *format)
	}
	if err != nil {
		log.Fatalf("report: %v", err)
	}
	if err := closeOut(); err != nil {
		log.Fatalf("report: %v", err)
	}
}

// incidentKinds lists the journal kinds the incident timeline keeps.
var incidentKinds = map[string]bool{
	journal.KindJobRetry:      true,
	journal.KindLeaseReclaim:  true,
	journal.KindBreakerTrip:   true,
	journal.KindWorkerEvict:   true,
	journal.KindNetFault:      true,
	journal.KindLocalFallback: true,
}

// BuildReport folds the journal (and optionally the manifest's telemetry)
// into the postmortem report.
func BuildReport(j *journal.Journal, man *expt.Manifest, top int) *Report {
	rep := &Report{
		Schema: ReportSchema,
		Tool:   j.Meta.Tool,
		Grid:   j.Meta.Grid,
		Events: len(j.Events),
	}
	if n := len(j.Events); n > 0 {
		rep.WallMS = float64(j.Events[n-1].HostNS-j.Events[0].HostNS) / 1e6
	}

	// One pass over the events: outcome counts, latency samples, worker
	// accounting, cost rows, incidents.
	type wacc struct {
		name                 string
		jobs, cached, failed int
		hostMS               float64
		evicted              bool
	}
	workers := map[string]*wacc{}
	worker := func(id string) *wacc {
		w := workers[id]
		if w == nil {
			w = &wacc{}
			workers[id] = w
		}
		return w
	}
	submitNS := map[string]int64{}
	var samples []float64
	costs := map[[2]string]*CostRow{}
	distributed := false
	for _, ev := range j.Events {
		switch ev.Kind {
		case journal.KindJobSubmit:
			rep.Jobs.Submitted++
			if _, ok := submitNS[ev.Key]; !ok {
				submitNS[ev.Key] = ev.HostNS
			}
		case journal.KindJobRetry:
			rep.Jobs.Retries++
		case journal.KindJobResult:
			switch ev.Status {
			case "ran":
				rep.Jobs.Ran++
			case "cached":
				rep.Jobs.Cached++
			default:
				rep.Jobs.Failed++
			}
			if ev.Status == "ran" || ev.Status == "cached" {
				if ns, ok := submitNS[ev.Key]; ok {
					samples = append(samples, float64(ev.HostNS-ns)/1e6)
				}
				ck := [2]string{ev.Workload, ev.Condition}
				c := costs[ck]
				if c == nil {
					c = &CostRow{Workload: ev.Workload, Condition: ev.Condition}
					costs[ck] = c
				}
				c.Jobs++
				c.HostMS += ev.HostMS
				c.VCycles += ev.VCycles
			}
		case journal.KindWorkerJoin:
			distributed = true
			worker(ev.Worker).name = ev.Detail
		case journal.KindJobReport:
			distributed = true
			w := worker(ev.Worker)
			switch ev.Status {
			case "ran", "cached":
				w.jobs++
				if ev.Status == "cached" {
					w.cached++
				}
				w.hostMS += ev.HostMS
			case "failed":
				w.failed++
			}
		case journal.KindWorkerEvict:
			worker(ev.Worker).evicted = true
		}
		if incidentKinds[ev.Kind] {
			rep.Incidents = append(rep.Incidents, Incident{
				HostNS: ev.HostNS, Kind: ev.Kind, Worker: ev.Worker, Key: ev.Key,
				Detail: ev.Detail, Err: ev.Err, Count: ev.Count, Attempt: ev.Attempt,
			})
		}
	}

	if !distributed {
		// A local pool is one implicit worker; give it the same row shape.
		w := worker("local")
		w.name = "local pool"
		w.jobs = rep.Jobs.Ran + rep.Jobs.Cached
		w.cached = rep.Jobs.Cached
		w.failed = rep.Jobs.Failed
		for _, c := range costs {
			w.hostMS += c.HostMS
		}
	}
	ids := make([]string, 0, len(workers))
	for id := range workers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		w := workers[id]
		row := WorkerRow{
			Worker: id, Name: w.name, Jobs: w.jobs, Cached: w.cached,
			Failed: w.failed, HostMS: w.hostMS, Evicted: w.evicted,
		}
		if rep.WallMS > 0 {
			row.UtilPct = w.hostMS / rep.WallMS * 100
		}
		rep.Workers = append(rep.Workers, row)
	}

	ckeys := make([][2]string, 0, len(costs))
	for k := range costs {
		ckeys = append(ckeys, k)
	}
	sort.Slice(ckeys, func(i, j int) bool {
		// Most expensive first; ties by name for determinism.
		a, b := costs[ckeys[i]], costs[ckeys[j]]
		if a.HostMS != b.HostMS {
			return a.HostMS > b.HostMS
		}
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		return a.Condition < b.Condition
	})
	for _, k := range ckeys {
		rep.Costs = append(rep.Costs, *costs[k])
	}

	if len(samples) > 0 {
		sort.Float64s(samples)
		rep.Latency = &Latency{
			Count:  len(samples),
			P50MS:  percentile(samples, 0.50),
			P99MS:  percentile(samples, 0.99),
			P999MS: percentile(samples, 0.999),
			MaxMS:  samples[len(samples)-1],
		}
	}

	if man != nil {
		var snaps []telemetry.Keyed
		for _, c := range man.Entries() {
			if c.Result != nil && c.Result.Telem != nil {
				snaps = append(snaps, telemetry.Keyed{Key: c.Key, Snap: c.Result.Telem})
			}
		}
		if len(snaps) > 0 {
			merged := telemetry.Merge(snaps)
			rep.TraceDropped = merged.TraceDropped
			byStack := map[string]uint64{}
			var total uint64
			for _, s := range merged.Stacks {
				byStack[s.Stack] += s.Cycles
				total += s.Cycles
			}
			stacks := make([]StackRow, 0, len(byStack))
			for stack, cyc := range byStack {
				row := StackRow{Stack: stack, Cycles: cyc}
				if total > 0 {
					row.SharePct = float64(cyc) / float64(total) * 100
				}
				stacks = append(stacks, row)
			}
			sort.Slice(stacks, func(i, j int) bool {
				if stacks[i].Cycles != stacks[j].Cycles {
					return stacks[i].Cycles > stacks[j].Cycles
				}
				return stacks[i].Stack < stacks[j].Stack
			})
			if top > 0 && len(stacks) > top {
				stacks = stacks[:top]
			}
			rep.TopStacks = stacks
		}
	}
	return rep
}

// percentile reads the q-quantile from sorted samples (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// WriteText renders the report for a terminal.
func (r *Report) WriteText(w io.Writer) error {
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	p("campaign postmortem: tool=%s\n", r.Tool)
	p("grid: %s\n", r.Grid)
	p("journal: %d event(s) spanning %.1fs host wall clock\n\n", r.Events, r.WallMS/1e3)

	p("jobs: %d submitted, %d ran, %d cached, %d failed, %d retried\n",
		r.Jobs.Submitted, r.Jobs.Ran, r.Jobs.Cached, r.Jobs.Failed, r.Jobs.Retries)
	if r.Latency != nil {
		p("job latency (submit to result, queue wait included): p50 %.1fms  p99 %.1fms  p99.9 %.1fms  max %.1fms over %d job(s)\n",
			r.Latency.P50MS, r.Latency.P99MS, r.Latency.P999MS, r.Latency.MaxMS, r.Latency.Count)
	}

	if len(r.Workers) > 0 {
		p("\nworkers:\n")
		p("  %-10s %-20s %6s %7s %7s %12s %7s\n", "WORKER", "NAME", "JOBS", "CACHED", "FAILED", "HOST-MS", "UTIL")
		for _, row := range r.Workers {
			note := ""
			if row.Evicted {
				note = "  (evicted)"
			}
			p("  %-10s %-20s %6d %7d %7d %12.1f %6.1f%%%s\n",
				row.Worker, row.Name, row.Jobs, row.Cached, row.Failed, row.HostMS, row.UtilPct, note)
		}
	}

	if len(r.Costs) > 0 {
		p("\nhost cost by grid row:\n")
		p("  %-16s %-22s %6s %12s %16s\n", "WORKLOAD", "CONDITION", "JOBS", "HOST-MS", "SIM-CYCLES")
		for _, c := range r.Costs {
			p("  %-16s %-22s %6d %12.1f %16d\n", c.Workload, c.Condition, c.Jobs, c.HostMS, c.VCycles)
		}
	}

	if len(r.Incidents) > 0 {
		p("\nincidents (%d):\n", len(r.Incidents))
		for _, in := range r.Incidents {
			line := fmt.Sprintf("  %10.3fs  %-14s", float64(in.HostNS)/1e9, in.Kind)
			if in.Worker != "" {
				line += " worker=" + in.Worker
			}
			if in.Key != "" {
				line += fmt.Sprintf(" key=%.12s", in.Key)
			}
			if in.Attempt > 0 {
				line += fmt.Sprintf(" attempt=%d", in.Attempt)
			}
			if in.Count > 0 {
				line += fmt.Sprintf(" count=%d", in.Count)
			}
			if in.Detail != "" {
				line += " " + in.Detail
			}
			if in.Err != "" {
				line += " [" + in.Err + "]"
			}
			p("%s\n", line)
		}
	} else {
		p("\nincidents: none\n")
	}

	if len(r.TopStacks) > 0 {
		p("\ntop simulated-cycle attribution:\n")
		for _, s := range r.TopStacks {
			p("  %6.2f%%  %14d  %s\n", s.SharePct, s.Cycles, s.Stack)
		}
		if r.TraceDropped > 0 {
			p("  (trace ring dropped %d event(s) campaign-wide)\n", r.TraceDropped)
		}
	}
	return nil
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>{{.Tool}} campaign postmortem</title>
<style>
body{font:14px/1.5 system-ui,sans-serif;margin:2em;max-width:72em}
table{border-collapse:collapse;margin:1em 0}
th,td{border:1px solid #ccc;padding:.3em .7em;text-align:left}
th{background:#f0f0f0}
td.num{text-align:right;font-variant-numeric:tabular-nums}
code{background:#f6f6f6;padding:0 .2em}
.evicted{color:#b00}
</style></head><body>
<h1>{{.Tool}} campaign postmortem</h1>
<p><code>{{.Grid}}</code></p>
<p>{{.Events}} journal event(s), {{printf "%.1f" .WallSec}}s host wall clock.</p>
<h2>Jobs</h2>
<p>{{.R.Jobs.Submitted}} submitted &middot; {{.R.Jobs.Ran}} ran &middot; {{.R.Jobs.Cached}} cached &middot; {{.R.Jobs.Failed}} failed &middot; {{.R.Jobs.Retries}} retried</p>
{{if .R.Latency}}<p>Latency (submit&rarr;result, queue wait included): p50 {{printf "%.1f" .R.Latency.P50MS}}ms &middot; p99 {{printf "%.1f" .R.Latency.P99MS}}ms &middot; p99.9 {{printf "%.1f" .R.Latency.P999MS}}ms &middot; max {{printf "%.1f" .R.Latency.MaxMS}}ms over {{.R.Latency.Count}} job(s)</p>{{end}}
{{if .R.Workers}}<h2>Workers</h2>
<table><tr><th>Worker</th><th>Name</th><th>Jobs</th><th>Cached</th><th>Failed</th><th>Host ms</th><th>Utilization</th></tr>
{{range .R.Workers}}<tr{{if .Evicted}} class="evicted"{{end}}><td>{{.Worker}}</td><td>{{.Name}}{{if .Evicted}} (evicted){{end}}</td><td class="num">{{.Jobs}}</td><td class="num">{{.Cached}}</td><td class="num">{{.Failed}}</td><td class="num">{{printf "%.1f" .HostMS}}</td><td class="num">{{printf "%.1f" .UtilPct}}%</td></tr>
{{end}}</table>{{end}}
{{if .R.Costs}}<h2>Host cost by grid row</h2>
<table><tr><th>Workload</th><th>Condition</th><th>Jobs</th><th>Host ms</th><th>Sim cycles</th></tr>
{{range .R.Costs}}<tr><td>{{.Workload}}</td><td>{{.Condition}}</td><td class="num">{{.Jobs}}</td><td class="num">{{printf "%.1f" .HostMS}}</td><td class="num">{{.VCycles}}</td></tr>
{{end}}</table>{{end}}
<h2>Incidents</h2>
{{if .R.Incidents}}<table><tr><th>At</th><th>Kind</th><th>Worker</th><th>Key</th><th>Detail</th></tr>
{{range .R.Incidents}}<tr><td class="num">{{printf "%.3f" .HostSec}}s</td><td>{{.Kind}}</td><td>{{.Worker}}</td><td><code>{{.ShortKey}}</code></td><td>{{.Text}}</td></tr>
{{end}}</table>{{else}}<p>None.</p>{{end}}
{{if .R.TopStacks}}<h2>Top simulated-cycle attribution</h2>
<table><tr><th>Share</th><th>Cycles</th><th>Stack</th></tr>
{{range .R.TopStacks}}<tr><td class="num">{{printf "%.2f" .SharePct}}%</td><td class="num">{{.Cycles}}</td><td><code>{{.Stack}}</code></td></tr>
{{end}}</table>{{end}}
</body></html>
`))

// htmlIncident augments an incident with the template's derived fields.
type htmlIncident struct {
	Incident
}

func (h htmlIncident) HostSec() float64 { return float64(h.HostNS) / 1e9 }
func (h htmlIncident) ShortKey() string {
	if len(h.Key) > 12 {
		return h.Key[:12]
	}
	return h.Key
}
func (h htmlIncident) Text() string {
	var parts []string
	if h.Attempt > 0 {
		parts = append(parts, fmt.Sprintf("attempt=%d", h.Attempt))
	}
	if h.Count > 0 {
		parts = append(parts, fmt.Sprintf("count=%d", h.Count))
	}
	if h.Detail != "" {
		parts = append(parts, h.Detail)
	}
	if h.Err != "" {
		parts = append(parts, "["+h.Err+"]")
	}
	return strings.Join(parts, " ")
}

// WriteHTML renders the report as a standalone page.
func (r *Report) WriteHTML(w io.Writer) error {
	incidents := make([]htmlIncident, len(r.Incidents))
	for i, in := range r.Incidents {
		incidents[i] = htmlIncident{in}
	}
	data := struct {
		Tool, Grid string
		Events     int
		WallSec    float64
		R          struct {
			Jobs      JobsSummary
			Latency   *Latency
			Workers   []WorkerRow
			Costs     []CostRow
			Incidents []htmlIncident
			TopStacks []StackRow
		}
	}{Tool: r.Tool, Grid: r.Grid, Events: r.Events, WallSec: r.WallMS / 1e3}
	data.R.Jobs = r.Jobs
	data.R.Latency = r.Latency
	data.R.Workers = r.Workers
	data.R.Costs = r.Costs
	data.R.Incidents = incidents
	data.R.TopStacks = r.TopStacks
	return htmlTmpl.Execute(w, data)
}
