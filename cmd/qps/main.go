// Command qps regenerates the paper's gRPC QPS results: Figure 8 (latency
// percentiles normalized to baseline and throughput impact). The revoker is
// unpinned and competes with the two server threads for cores 2 and 3.
//
// Usage:
//
//	qps [-measure-ms N] [-warmup-ms N] [-reps N]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qps: ")
	measureMs := flag.Uint64("measure-ms", 500, "measurement window, virtual milliseconds")
	warmupMs := flag.Uint64("warmup-ms", 50, "warmup, virtual milliseconds")
	reps := flag.Int("reps", 3, "runs per condition")
	flag.Parse()

	cfg := harness.QPSConfig()
	cyclesPerMs := uint64(cfg.Machine.Sim.HzGHz * 1e6)
	t, err := harness.Fig8QPSLatency(*measureMs*cyclesPerMs, *warmupMs*cyclesPerMs, cfg, *reps)
	if err != nil {
		log.Fatal(err)
	}
	t.Fprint(os.Stdout)
}
