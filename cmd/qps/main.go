// Command qps regenerates the paper's gRPC QPS results: Figure 8 (latency
// percentiles normalized to baseline and throughput impact). The revoker is
// unpinned and competes with the two server threads for cores 2 and 3. The
// grid runs through the internal/expt orchestrator; -workers shards it
// across host cores (aggregated output is identical at any worker count).
//
// Usage:
//
//	qps [-measure-ms N] [-warmup-ms N] [-reps N] [-workers N]
package main

import (
	"flag"
	"log"
	"os"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("qps: ")
	measureMs := flag.Uint64("measure-ms", 500, "measurement window, virtual milliseconds")
	warmupMs := flag.Uint64("warmup-ms", 50, "warmup, virtual milliseconds")
	reps := flag.Int("reps", 3, "runs per condition")
	workers := flag.Int("workers", 1, "parallel jobs")
	flag.Parse()

	o := expt.DefaultOptions()
	o.Reps = *reps
	cyclesPerMs := uint64(o.QPSCfg.Machine.Sim.HzGHz * 1e6)
	o.Measure = *measureMs * cyclesPerMs
	o.Warmup = *warmupMs * cyclesPerMs

	pool := expt.NewPool(expt.PoolConfig{Workers: *workers})
	t, err := expt.Generate("fig8", o, pool)
	if err != nil {
		log.Fatal(err)
	}
	t.Fprint(os.Stdout)
}
