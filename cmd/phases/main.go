// Command phases regenerates Figure 9: the distribution of revocation
// phase times (stop-the-world, concurrent, and Reloaded's cumulative
// per-epoch fault handling) across the representative benchmark subset.
// The grid runs through the internal/expt orchestrator; -workers shards it
// across host cores (aggregated output is identical at any worker count).
//
// Usage:
//
//	phases [-reps N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/expt"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("phases: ")
	reps := flag.Int("reps", 2, "runs per (benchmark, condition) pair")
	plot := flag.Bool("plot", false, "also render per-benchmark ASCII box strips")
	workers := flag.Int("workers", 1, "parallel jobs")
	flag.Parse()

	o := expt.DefaultOptions()
	o.Reps = *reps

	pool := expt.NewPool(expt.PoolConfig{Workers: *workers})
	t, err := expt.Generate("fig9", o, pool)
	if err != nil {
		log.Fatal(err)
	}
	t.Fprint(os.Stdout)

	if *plot {
		// Group rows by benchmark and draw one strip each.
		var order []string
		groups := map[string][][]string{}
		for _, row := range t.Rows {
			if _, ok := groups[row[0]]; !ok {
				order = append(order, row[0])
			}
			groups[row[0]] = append(groups[row[0]], row)
		}
		for _, bench := range order {
			strip := &metrics.BoxStrip{Title: bench, XLabel: "ms", Width: 56}
			for _, row := range groups[bench] {
				if row[3] == "--" {
					continue
				}
				parts := strings.Split(row[3], "/")
				if len(parts) != 5 {
					continue
				}
				var v [5]float64
				ok := true
				for i, p := range parts {
					if _, err := fmt.Sscanf(p, "%g", &v[i]); err != nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				strip.Add(row[1]+" "+row[2], metrics.Box{Min: v[0], P25: v[1], Median: v[2], P75: v[3], Max: v[4]})
			}
			fmt.Print(strip.Render())
			fmt.Println()
		}
	}
}
