// Command hostbench runs the host-performance rig (internal/hostbench)
// and writes BENCH_host.json: where the simulator spends real CPU, as
// opposed to the simulated-cycle telemetry the figures are built from.
//
// Usage:
//
//	hostbench [-out BENCH_host.json] [-run REGEXP] [-check]
//	          [-live ADDR] [-live-linger D] [-metrics FILE]
//
// -live serves benchmark progress on the standard introspection endpoints
// (/jobs, /events, /metrics) while the rig runs — useful because a full
// run takes minutes; -metrics writes the final OpenMetrics body to a file
// at exit, with or without -live.
//
// Every benchmark body is driven through testing.Benchmark (the standard
// ~1s auto-scaling), so the emitted numbers match what
// `go test ./internal/hostbench -bench .` prints. The document records
// per-benchmark iterations, ns/op and reported metrics, plus the headline
// speedup ratios of the word-wise sweep kernel over the per-granule
// oracle:
//
//   - sweep_kernel: SweepTags / SweepTagsWords on a dense-tag page
//   - shadow_probe: ShadowTest / ShadowPaintedWord over the same span
//   - campaign: CampaignGranule / CampaignWord, the end-to-end heap-scale
//     sweep campaign
//   - sim_campaign_kernel: SimCampaignGranule / SimCampaignWord, the full
//     simulator under each -sweepkernel. Expected ≈1×: the word kernel is
//     required to replay the granule kernel's exact simulated bus/tick
//     sequence, and that shared accounting dominates host time.
//
// plus the speedup of the fast sim engine over the classic one:
//
//   - sim_campaign: SimCampaignClassic / SimCampaignFast, a Reloaded
//     revocation campaign over an 8192-connection open-loop fleet
//     (internal/workload/fleet) under each -simengine. The fleet is
//     scheduler-bound — almost every thread is asleep at any instant — so
//     this is where the classic engine's two channel crossings per slice
//     and O(threads) sleeper scan per dispatch show up end to end.
//
// plus the speedup of the sparse memory representations over their flat
// differential oracles (-mempath):
//
//   - heap_sweep: HeapSweepFlat / HeapSweepSparse, a whole-bank audit
//     sweep over a million-frame bank with sparse tags. The sparse walk
//     descends the region → frame-group summary tree in O(live tags);
//     the flat oracle scans every frame struct.
//   - fleet_setup: FleetSetupFlat / FleetSetupFast, an allocation-bound
//     connection-fleet campaign (large per-connection session pools)
//     under each -mempath. Word-masked tag clears, shadow chunk
//     recycling and O(1) vpn appends against the flat per-granule paths.
//
// -check exits nonzero unless sweep_kernel ≥ 3, campaign ≥ 1.5,
// sim_campaign ≥ 3, heap_sweep ≥ 5 and fleet_setup ≥ 2, the acceptance
// floors the committed BENCH_host.json is regenerated under.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"runtime"
	"testing"

	"repro/internal/expt/cliflags"
	"repro/internal/hostbench"
	"repro/internal/telemetry"
)

// Schema identifies the document layout.
const Schema = "cornucopia-hostbench/v1"

type benchResult struct {
	Name    string             `json:"name"`
	Iters   int                `json:"iters"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

type ratio struct {
	Baseline  string  `json:"baseline"`
	Contender string  `json:"contender"`
	Speedup   float64 `json:"speedup"`
}

type document struct {
	Schema     string           `json:"schema"`
	Go         string           `json:"go"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	GOMAXPROCS int              `json:"gomaxprocs"`
	Benchmarks []benchResult    `json:"benchmarks"`
	Ratios     map[string]ratio `json:"ratios"`
}

// ratioDefs names the headline speedups: contender ns/op in the
// denominator, so >1 means the word kernel (or fast engine) is faster.
var ratioDefs = []struct {
	key, baseline, contender string
}{
	{"sweep_kernel", hostbench.NameSweepTags, hostbench.NameSweepTagsWords},
	{"shadow_probe", hostbench.NameShadowTest, hostbench.NameShadowPainted},
	{"campaign", hostbench.NameCampaignGranule, hostbench.NameCampaignWord},
	{"sim_campaign_kernel", hostbench.NameSimCampaignGranule, hostbench.NameSimCampaignWord},
	{"sim_campaign", hostbench.NameSimCampaignClassic, hostbench.NameSimCampaignFast},
	{"heap_sweep", hostbench.NameHeapSweepFlat, hostbench.NameHeapSweepSparse},
	{"fleet_setup", hostbench.NameFleetSetupFlat, hostbench.NameFleetSetupFast},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("hostbench: ")
	out := flag.String("out", "BENCH_host.json", "write the benchmark document to this file ('-' for stdout)")
	run := flag.String("run", "", "only run benchmarks matching this regexp")
	check := flag.Bool("check", false, "exit nonzero unless sweep_kernel >= 3, campaign >= 1.5, sim_campaign >= 3, heap_sweep >= 5 and fleet_setup >= 2")
	lf := cliflags.RegisterLive()
	flag.Parse()

	var filter *regexp.Regexp
	if *run != "" {
		var err error
		if filter, err = regexp.Compile(*run); err != nil {
			log.Fatalf("bad -run regexp: %v", err)
		}
	}

	live, err := lf.Start("hostbench")
	if err != nil {
		log.Fatal(err)
	}
	var selected []int // indices into hostbench.Benchmarks
	for i, b := range hostbench.Benchmarks {
		if filter != nil && !filter.MatchString(b.Name) {
			continue
		}
		selected = append(selected, i)
	}

	doc := document{
		Schema:     Schema,
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Ratios:     map[string]ratio{},
	}
	nsPerOp := map[string]float64{}
	for done, i := range selected {
		b := hostbench.Benchmarks[i]
		r := testing.Benchmark(b.F)
		if r.N == 0 {
			log.Fatalf("%s: benchmark failed to run", b.Name)
		}
		ns := float64(r.T.Nanoseconds()) / float64(r.N)
		nsPerOp[b.Name] = ns
		br := benchResult{Name: b.Name, Iters: r.N, NsPerOp: ns}
		if len(r.Extra) > 0 {
			br.Metrics = r.Extra
		}
		doc.Benchmarks = append(doc.Benchmarks, br)
		live.Observe(telemetry.JobUpdate{
			Key: b.Name, Workload: b.Name, Condition: "hostbench", Status: "ran",
			HostMS: float64(r.T.Nanoseconds()) / 1e6,
			Done:   done + 1, Total: len(selected),
		})
		fmt.Fprintf(os.Stderr, "%-24s %12d iters  %14.1f ns/op\n", b.Name, r.N, ns)
	}

	for _, d := range ratioDefs {
		base, okB := nsPerOp[d.baseline]
		cont, okC := nsPerOp[d.contender]
		if !okB || !okC {
			continue
		}
		doc.Ratios[d.key] = ratio{Baseline: d.baseline, Contender: d.contender, Speedup: base / cont}
		fmt.Fprintf(os.Stderr, "%-24s %6.2fx  (%s / %s)\n", d.key, base/cont, d.baseline, d.contender)
	}

	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "-" {
		os.Stdout.Write(enc)
	} else {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d benchmarks, schema %s)\n", *out, len(doc.Benchmarks), Schema)
	}

	if err := lf.Finish(live); err != nil {
		log.Print(err)
	}

	if *check {
		fail := false
		for key, min := range map[string]float64{"sweep_kernel": 3, "campaign": 1.5, "sim_campaign": 3, "heap_sweep": 5, "fleet_setup": 2} {
			r, ok := doc.Ratios[key]
			if !ok {
				log.Printf("check: ratio %s not measured (filtered out?)", key)
				fail = true
			} else if r.Speedup < min {
				log.Printf("check: %s speedup %.2fx below the %.1fx floor", key, r.Speedup, min)
				fail = true
			}
		}
		if fail {
			os.Exit(1)
		}
	}
}
