// Command sweep regenerates any subset of the paper's evaluation (§5) —
// or the whole thing — through the internal/expt orchestrator: the
// selected figures' grids are expanded into independent (workload,
// condition, seed) jobs, sharded across -workers host goroutines, and
// folded into the same tables the per-suite commands print. Aggregated
// output is byte-identical at any worker count, because every job is
// deterministic per seed and boots its own cold machine.
//
// Usage:
//
//	sweep [-figures all|fig1,table2,...] [-workers N] [-timeout D] [-retries N]
//	      [-retry-backoff D] [-resume FILE] [-compact] [-out results.json]
//	      [-canonical] [-dry-run] [-progress]
//	      [-exec local|net] [-listen ADDR] [-addr-file FILE] [-heartbeat D]
//	      [-retry-backoff-max D] [-retry-jitter F]
//	      [-netfault CLASSES] [-netfault-seed N] [-netfault-rate P]
//	      [-netfault-max N] [-netfault-delay D] [-netfault-partition-frac F]
//	      [-breaker-failures N] [-breaker-cooldown D]
//	      [-evict-after D] [-local-fallback D]
//	      [-http ADDR] [-http-linger D]
//	      [-journal FILE] [-timeline FILE] [-timeline-canonical]
//	      [-trace-events N]
//	      [-sweepkernel word|granule] [-simengine fast|classic]
//	      [-cpuprofile FILE] [-memprofile FILE]
//	      [-prof-folded FILE] [-prof-pprof FILE] [-metrics-out FILE]
//	      [-series-csv FILE] [-sample-every N]
//	      [-reps N] [-scale N] [-txs N] [-measure-ms N] [-warmup-ms N] [-seed N]
//
// -dry-run resolves the selected figures' grids without executing
// anything and prints every distinct job (content-hash key, workload,
// condition, seed) plus a dedup summary — the exact cells a real
// invocation would run or serve from a manifest.
//
// -exec=net runs the same campaign distributed: this process becomes the
// coordinator (see internal/dist), listening on -listen for cmd/worker
// processes and leasing grid cells to them over the cornucopia-dist/v1
// protocol. Every document and manifest such a campaign writes is
// byte-identical to a local run's (jobs are deterministic per seed;
// -canonical strips the host-side execution metadata — per-job host_ms,
// attempt counts, pool counters — that legitimately differs).
//
// -journal appends a campaign journal (cornucopia-journal/v1 JSONL) of
// every job submit/start/retry/result and — under -exec=net — every
// worker join/evict, lease grant/reclaim, breaker trip and injected
// network fault, for cmd/obs postmortems. -timeline writes a merged
// Chrome/Perfetto timeline (open in chrome://tracing or ui.perfetto.dev)
// with each worker as a named process track; -timeline-canonical strips
// the host metadata so local and distributed runs of the same grid
// produce byte-identical timelines. -trace-events N arms the per-job
// simulated-cycle tracer (internal/trace) with an N-event ring whose
// contents ride the telemetry snapshots into manifests and timelines.
//
// -sweepkernel selects the page-sweep implementation: the default batch
// word-wise kernel or the per-granule differential oracle. Both produce
// identical simulated results (and therefore identical documents and
// manifest entries); granule exists to cross-check the word kernel and to
// measure its host-side speedup. -simengine likewise selects the sim
// execution engine: the default fast engine (inline scheduling, batched
// observer delivery) or the classic channel-per-slice engine it is
// bit-identical to — documents and manifest entries are engine-agnostic.
// -cpuprofile/-memprofile write host pprof
// profiles — real time and allocations, complementing the simulated-cycle
// telemetry exports below.
//
// -resume FILE attaches an on-disk manifest keyed by job content hash:
// completed jobs are recorded as they finish, and a re-invoked sweep
// serves them from the manifest instead of recomputing. Interrupt a sweep
// at any point and rerun it to pick up where it left off. The manifest's
// header records the figure set and grid flags that produced it; resuming
// with different flags fails immediately with a description of the
// mismatch (rerun with matching flags, or point -resume at a fresh file).
//
// -out FILE additionally writes a machine-readable JSON document (schema
// cornucopia-sweep/v1): every figure's rows, every job's headline
// measurements, and per-(workload, condition) aggregate distributions —
// suitable for BENCH_*.json perf-trajectory tracking.
//
// The telemetry exports (-prof-folded, -prof-pprof, -metrics-out,
// -series-csv) arm per-job cycle profiling and metrics recording
// (internal/telemetry): every job's profile is conservation-checked, and
// the merged exports are byte-identical at any -workers count. -http
// serves live campaign progress and the merged metrics while the sweep
// runs (see internal/telemetry.Live).
//
// -scale N sets the SPEC footprint divisor; pgbench runs at N/8 and gRPC
// QPS at N, preserving the suites' relative scales.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/expt"
	"repro/internal/expt/cliflags"
	"repro/internal/harness"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	figures := flag.String("figures", "all", "comma-separated figure ids (fig1..fig9, table1, table2, heapscale) or 'all'")
	list := flag.Bool("list", false, "list figure ids and exit")
	shared := cliflags.Register()
	out := flag.String("out", "", "write machine-readable JSON results to this file")
	canonical := flag.Bool("canonical", false, "strip host-execution metadata (host_ms, attempts, pool counters) from -out for byte-stable diffs")
	dryRun := flag.Bool("dry-run", false, "resolve and print the job grid (keys, workloads, conditions, seeds) without executing")
	profFolded := flag.String("prof-folded", "", "write the merged cycle profile as folded flame-graph stacks to this file")
	profPprof := flag.String("prof-pprof", "", "write the merged cycle profile as a gzipped pprof proto to this file")
	metricsOut := flag.String("metrics-out", "", "write the merged final metrics in OpenMetrics text format to this file")
	seriesCSV := flag.String("series-csv", "", "write every job's sampled time series as CSV to this file")
	sampleEvery := flag.Uint64("sample-every", telemetry.DefaultSampleEvery, "time-series sampling interval, simulated cycles")
	reps := flag.Int("reps", 3, "runs per grid cell")
	scale := flag.Uint64("scale", 64, "SPEC footprint divisor (pgbench scales at 1/8 of this)")
	txs := flag.Int("txs", 6000, "pgbench transactions per run")
	measureMs := flag.Uint64("measure-ms", 500, "gRPC QPS measurement window, virtual milliseconds")
	warmupMs := flag.Uint64("warmup-ms", 50, "gRPC QPS warmup, virtual milliseconds")
	seed := flag.Int64("seed", 1, "base random seed")
	flag.Parse()

	if *list {
		for _, f := range expt.Figures() {
			fmt.Printf("%-8s %s\n", f.ID, f.Title)
		}
		return
	}

	// Host-side profiling (-cpuprofile/-memprofile): where the simulator
	// spends real time, as opposed to the simulated-cycle profiler below.
	stopProf, err := shared.StartProfiles()
	if err != nil {
		log.Fatal(err)
	}

	o := expt.DefaultOptions()
	o.Reps = *reps
	o.Txs = *txs
	o.SpecCfg.Scale = *scale
	o.SpecCfg.Seed = *seed
	o.PgCfg.Seed = *seed
	o.QPSCfg.Seed = *seed
	if *scale != 64 {
		pg := *scale / 8
		if pg == 0 {
			pg = 1
		}
		o.PgCfg.Scale = pg
		o.QPSCfg.Scale = *scale
	}
	perMs := uint64(o.QPSCfg.Machine.Sim.HzGHz * 1e6)
	o.Measure = *measureMs * perMs
	o.Warmup = *warmupMs * perMs

	var selected []expt.Figure
	if *figures == "all" {
		selected = expt.Figures()
	} else {
		for _, id := range strings.Split(*figures, ",") {
			id = strings.TrimSpace(id)
			f, ok := expt.ByID(id)
			if !ok {
				log.Fatalf("unknown figure %q (use -list)", id)
			}
			selected = append(selected, f)
		}
	}

	if *dryRun {
		// Resolve the grids through a Planner: the figure builders run to
		// completion against synthetic results, recording every cell they
		// would request. Their tables are meaningless and are not shown.
		planner := expt.NewPlanner()
		for _, f := range selected {
			if _, err := f.Build(o, planner); err != nil {
				log.Fatalf("%s: dry-run: %v", f.ID, err)
			}
		}
		if err := planner.WriteGrid(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	// Telemetry is armed by any consumer of it: an export file, the live
	// server's merged-metrics families, or the cycle tracer (trace rings
	// ride inside telemetry snapshots).
	wantTelem := *profFolded != "" || *profPprof != "" || *metricsOut != "" ||
		*seriesCSV != "" || shared.HTTPAddr != "" || shared.TraceEvents > 0

	// The manifest header pins the exact grid this file caches: the
	// sorted figure set plus every flag that changes job content. A
	// -resume against a file written with different flags fails up
	// front instead of silently re-running (or worse, mixing) grids.
	ids := make([]string, len(selected))
	for i, f := range selected {
		ids[i] = f.ID
	}
	sort.Strings(ids)
	grid := fmt.Sprintf("figures=%s reps=%d scale=%d txs=%d measure-ms=%d warmup-ms=%d seed=%d",
		strings.Join(ids, ","), *reps, *scale, *txs, *measureMs, *warmupMs, *seed)
	if wantTelem {
		// Sample interval shapes the recorded series; mixing intervals in
		// one manifest would merge incomparable rows.
		grid += fmt.Sprintf(" telemetry-sample-every=%d", *sampleEvery)
	}
	if shared.TraceEvents > 0 {
		// Ring depth shapes the recorded trace the same way: snapshots
		// cached under one depth must not resume a run expecting another.
		grid += fmt.Sprintf(" trace-events=%d", shared.TraceEvents)
	}
	manifest, err := shared.Manifest("sweep", grid)
	if err != nil {
		log.Fatal(err)
	}
	if manifest != nil {
		defer manifest.Close()
		if n := manifest.Len(); n > 0 {
			fmt.Printf("resuming: %d completed job(s) on record in %s\n", n, shared.Resume)
		}
	}

	pcfg, live, err := shared.PoolConfig("sweep", manifest)
	if err != nil {
		log.Fatal(err)
	}
	if wantTelem {
		pcfg.Telemetry = &telemetry.Options{SampleEvery: *sampleEvery, TraceEvents: shared.TraceEvents}
	}
	pool, closeExec, err := shared.NewExecutor("sweep", grid, pcfg, live)
	if err != nil {
		log.Fatal(err)
	}
	if live != nil && wantTelem {
		live.SetMetricsSource(func() *telemetry.Snapshot {
			return telemetry.Merge(telemetrySnaps(pool))
		})
	}

	// Build every selected figure concurrently: each figure prefetches its
	// whole grid up front, so the pool sees the union of all grids at once
	// (overlapping cells dedupe by content hash) and keeps all workers
	// busy. Tables print in selection order regardless of finish order.
	start := time.Now()
	type built struct {
		tb  *harness.Table
		err error
	}
	done := make([]chan built, len(selected))
	for i, f := range selected {
		done[i] = make(chan built, 1)
		go func(f expt.Figure, ch chan built) {
			tb, err := f.Build(o, pool)
			ch <- built{tb, err}
		}(f, done[i])
	}
	var figResults []expt.FigureResult
	failed := false
	for i, f := range selected {
		b := <-done[i]
		if b.err != nil {
			log.Printf("%s: %v", f.ID, b.err)
			failed = true
			continue
		}
		b.tb.Fprint(os.Stdout)
		figResults = append(figResults, expt.NewFigureResult(f.ID, b.tb))
	}
	// Every Get has returned: drain the worker fleet (no-op under
	// -exec=local) before reporting.
	if err := closeExec(); err != nil {
		log.Printf("closing executor: %v", err)
	}
	st := pool.Stats()
	fmt.Printf("sweep: %d job(s) ran, %d from manifest, %d retried, %d failed; %d worker(s), %.1fs host wall clock\n",
		st.Executed, st.Cached, st.Retries, st.Failed, shared.Workers, time.Since(start).Seconds())

	if err := shared.WriteTimeline("sweep", pool); err != nil {
		log.Fatal(err)
	}

	if *out != "" {
		doc := expt.BuildDocument(pool, figResults, shared.Workers, *reps, *scale)
		if *canonical {
			doc.Canonicalize()
		}
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		if err := doc.Write(f); err != nil {
			f.Close()
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sweep: wrote %s (%d jobs, %d aggregates, schema %s)\n",
			*out, len(doc.Jobs), len(doc.Aggregates), expt.Schema)
	}

	if wantTelem {
		if err := writeTelemetry(pool, *profFolded, *profPprof, *metricsOut, *seriesCSV); err != nil {
			log.Fatal(err)
		}
	}

	if err := stopProf(); err != nil {
		log.Fatal(err)
	}
	shared.Finish(live)
	if failed {
		os.Exit(1)
	}
}

// telemetrySnaps collects the completed jobs' telemetry snapshots keyed
// by job hash. Jobs run without telemetry (e.g. served from an older
// manifest) are skipped.
func telemetrySnaps(pool expt.Executor) []telemetry.Keyed {
	var out []telemetry.Keyed
	for _, c := range pool.Results() {
		if c.Result.Telem != nil {
			out = append(out, telemetry.Keyed{Key: c.Key, Snap: c.Result.Telem})
		}
	}
	return out
}

// writeTelemetry emits the requested merged exports. Merge sorts by job
// key, so every file is byte-identical at any -workers count.
func writeTelemetry(pool expt.Executor, folded, pprofOut, metricsOut, seriesCSV string) error {
	snaps := telemetrySnaps(pool)
	if len(snaps) == 0 {
		fmt.Fprintln(os.Stderr, "sweep: no telemetry recorded (all jobs served from a pre-telemetry manifest?)")
	}
	merged := telemetry.Merge(snaps)
	if merged.TraceDropped > 0 {
		fmt.Fprintf(os.Stderr, "sweep: trace ring overflowed: %d event(s) dropped across the campaign (raise -trace-events)\n",
			merged.TraceDropped)
	}
	write := func(path string, fn func(*os.File) error) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("sweep: wrote %s\n", path)
		return nil
	}
	if err := write(folded, func(f *os.File) error { return merged.WriteFolded(f) }); err != nil {
		return err
	}
	if err := write(pprofOut, func(f *os.File) error { return merged.WritePprof(f) }); err != nil {
		return err
	}
	if err := write(metricsOut, func(f *os.File) error { return merged.WriteOpenMetrics(f, true) }); err != nil {
		return err
	}
	return write(seriesCSV, func(f *os.File) error { return telemetry.WriteSeriesCSV(f, snaps) })
}
