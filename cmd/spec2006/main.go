// Command spec2006 regenerates the paper's SPEC CPU2006 INT results:
// Figure 1 (wall-clock overheads), Figure 2 (CPU-time overheads), Figure 3
// (peak RSS ratios), Figure 4 (DRAM traffic overheads) and the SPEC rows of
// Table 2 (revocation rates).
//
// Usage:
//
//	spec2006 [-fig N] [-table 2] [-reps N] [-scale N]
//
// Without -fig/-table it runs everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spec2006: ")
	fig := flag.Int("fig", 0, "regenerate only this figure (1-4)")
	table := flag.Int("table", 0, "regenerate only this table (2)")
	reps := flag.Int("reps", 3, "runs per (benchmark, condition) pair")
	scale := flag.Uint64("scale", 64, "footprint divisor versus full-size workloads")
	flag.Parse()

	cfg := harness.SpecConfig()
	cfg.Scale = *scale

	run := func(n int, f func() (*harness.Table, error)) {
		if (*fig != 0 || *table != 0) && n != *fig*10 && n != *table {
			return
		}
		t, err := f()
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
	}

	if *fig == 0 && *table == 0 {
		fmt.Println("Running the full SPEC CPU2006 INT evaluation; this takes a few minutes per figure.")
	}
	run(10, func() (*harness.Table, error) { return harness.Fig1WallClock(cfg, *reps) })
	run(20, func() (*harness.Table, error) { return harness.Fig2CPUTime(cfg, *reps) })
	run(30, func() (*harness.Table, error) { return harness.Fig3RSS(cfg, *reps) })
	run(40, func() (*harness.Table, error) { return harness.Fig4BusTraffic(cfg, *reps) })
	run(2, func() (*harness.Table, error) { return harness.Table2RevRates(cfg, *reps) })
}
