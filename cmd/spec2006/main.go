// Command spec2006 regenerates the paper's SPEC CPU2006 INT results:
// Figure 1 (wall-clock overheads), Figure 2 (CPU-time overheads), Figure 3
// (peak RSS ratios), Figure 4 (DRAM traffic overheads) and the SPEC rows of
// Table 2 (revocation rates). The grids run through the internal/expt
// orchestrator; -workers shards them across host cores (aggregated output
// is identical at any worker count).
//
// Usage:
//
//	spec2006 [-fig N] [-table 2] [-reps N] [-scale N] [-workers N]
//
// Without -fig/-table it runs everything.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spec2006: ")
	fig := flag.Int("fig", 0, "regenerate only this figure (1-4)")
	table := flag.Int("table", 0, "regenerate only this table (2)")
	reps := flag.Int("reps", 3, "runs per (benchmark, condition) pair")
	scale := flag.Uint64("scale", 64, "footprint divisor versus full-size workloads")
	workers := flag.Int("workers", 1, "parallel jobs")
	flag.Parse()

	o := expt.DefaultOptions()
	o.Reps = *reps
	o.SpecCfg.Scale = *scale

	all := *fig == 0 && *table == 0
	var ids []string
	for n := 1; n <= 4; n++ {
		if all || *fig == n {
			ids = append(ids, fmt.Sprintf("fig%d", n))
		}
	}
	if all || *table == 2 {
		ids = append(ids, "table2")
	}

	if all {
		fmt.Println("Running the full SPEC CPU2006 INT evaluation; this takes a few minutes per figure.")
	}
	pool := expt.NewPool(expt.PoolConfig{Workers: *workers})
	for _, id := range ids {
		t, err := expt.Generate(id, o, pool)
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
	}
}
