// Command pgbench regenerates the paper's PostgreSQL pgbench results:
// Figure 5 (normalized time overheads), Figure 6 (bus access overheads),
// Figure 7 (per-transaction latency distribution with phase medians) and
// Table 1 (latency percentiles under fixed-rate schedules).
//
// Usage:
//
//	pgbench [-fig N] [-table 1] [-txs N] [-reps N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/harness"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgbench: ")
	fig := flag.Int("fig", 0, "regenerate only this figure (5-7)")
	table := flag.Int("table", 0, "regenerate only this table (1)")
	txs := flag.Int("txs", 6000, "transactions per run")
	reps := flag.Int("reps", 3, "runs per condition")
	plot := flag.Bool("plot", false, "render Figure 7 as an ASCII CDF instead of a table")
	flag.Parse()

	cfg := harness.PgbenchConfig()
	run := func(n int, f func() (*harness.Table, error)) {
		if (*fig != 0 || *table != 0) && n != *fig*10 && n != *table {
			return
		}
		t, err := f()
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
	}
	run(50, func() (*harness.Table, error) { return harness.Fig5PgbenchTime(*txs, cfg, *reps) })
	run(60, func() (*harness.Table, error) { return harness.Fig6PgbenchBus(*txs, cfg, *reps) })
	if *plot {
		if *fig == 0 || *fig == 7 {
			samples, err := harness.Fig7Samples(*txs, cfg, *reps)
			if err != nil {
				log.Fatal(err)
			}
			p := &metrics.CDFPlot{
				Title:  "Figure 7: pgbench per-transaction latency CDF",
				XLabel: "latency (ms)",
			}
			for _, name := range []string{"Paint+sync", "CHERIvoke", "Cornucopia", "Reloaded"} {
				p.Add(name, samples[name])
			}
			fmt.Print(p.Render())
		}
	} else {
		run(70, func() (*harness.Table, error) { return harness.Fig7PgbenchCDF(*txs, cfg, *reps) })
	}
	run(1, func() (*harness.Table, error) { return harness.Table1RateSchedules(*txs, cfg, *reps) })
}
