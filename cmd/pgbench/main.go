// Command pgbench regenerates the paper's PostgreSQL pgbench results:
// Figure 5 (normalized time overheads), Figure 6 (bus access overheads),
// Figure 7 (per-transaction latency distribution with phase medians) and
// Table 1 (latency percentiles under fixed-rate schedules). The grids run
// through the internal/expt orchestrator — the four artifacts share one
// memoized pgbench matrix, and -workers shards it across host cores
// (aggregated output is identical at any worker count).
//
// Usage:
//
//	pgbench [-fig N] [-table 1] [-txs N] [-reps N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/expt"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pgbench: ")
	fig := flag.Int("fig", 0, "regenerate only this figure (5-7)")
	table := flag.Int("table", 0, "regenerate only this table (1)")
	txs := flag.Int("txs", 6000, "transactions per run")
	reps := flag.Int("reps", 3, "runs per condition")
	plot := flag.Bool("plot", false, "render Figure 7 as an ASCII CDF instead of a table")
	workers := flag.Int("workers", 1, "parallel jobs")
	flag.Parse()

	o := expt.DefaultOptions()
	o.Reps = *reps
	o.Txs = *txs

	all := *fig == 0 && *table == 0
	pool := expt.NewPool(expt.PoolConfig{Workers: *workers})
	show := func(id string) {
		t, err := expt.Generate(id, o, pool)
		if err != nil {
			log.Fatal(err)
		}
		t.Fprint(os.Stdout)
	}
	if all || *fig == 5 {
		show("fig5")
	}
	if all || *fig == 6 {
		show("fig6")
	}
	if *plot {
		if *fig == 0 || *fig == 7 {
			samples, err := expt.Fig7Samples(o, pool)
			if err != nil {
				log.Fatal(err)
			}
			p := &metrics.CDFPlot{
				Title:  "Figure 7: pgbench per-transaction latency CDF",
				XLabel: "latency (ms)",
			}
			for _, name := range []string{"Paint+sync", "CHERIvoke", "Cornucopia", "Reloaded"} {
				p.Add(name, samples[name])
			}
			fmt.Print(p.Render())
		}
	} else if all || *fig == 7 {
		show("fig7")
	}
	if all || *table == 1 {
		show("table1")
	}
}
