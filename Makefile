GO ?= go

# Packages cheap enough to run under the race detector on every verify:
# pure data structures and encoders, plus internal/sim — real goroutine +
# channel code whose fast engine hands execution between thread
# goroutines, so its handoff protocol is exactly what the race detector
# should watch. The heavier simulator packages (kernel, revoke, …) run
# one thread at a time on top of sim and are exercised by the plain
# `test` target.
RACE_PKGS = ./internal/bus ./internal/ca ./internal/dist/netfault \
            ./internal/expt/cliflags ./internal/fault ./internal/journal \
            ./internal/metrics ./internal/oracle ./internal/shadow \
            ./internal/sim ./internal/telemetry ./internal/tmem \
            ./internal/trace ./internal/vm ./internal/workload/heapscale

.PHONY: all build vet test race verify chaos sweep-bench telemetry-smoke \
        hostbench hostbench-smoke dist-smoke dist-chaos-smoke obs-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# expt's pool and dist's coordinator/worker are the genuinely
# host-concurrent components; -short keeps the race pass to their
# pool/manifest/protocol mechanics (injected run functions), skipping the
# simulation-backed campaign tests.
race:
	$(GO) test -race $(RACE_PKGS)
	$(GO) test -race -short ./internal/expt ./internal/dist

# verify is the tier-1 gate: everything must pass before a change lands.
verify: build vet test race

# chaos: a strict fault-injection smoke campaign against Reloaded. Every
# protocol-subverting class must be flagged by the soundness oracle and
# every infrastructure fault absorbed by abort-and-retry; any silent
# (undetected, unrecovered) fault fails the target.
chaos:
	$(GO) run ./cmd/chaos -strategies reloaded -seeds 2 -strict

# telemetry-smoke: end-to-end observability check. Runs a telemetry-armed
# sweep with the live introspection server on an ephemeral port, scrapes
# /metrics mid-campaign, and asserts the profiler/metrics exports land
# non-empty (folded stacks under telemetry-smoke/).
telemetry-smoke:
	./scripts/telemetry_smoke.sh

# dist-smoke: end-to-end distributed-execution check. Runs one grid on a
# local pool and again through a cmd/sweep coordinator with two cmd/worker
# processes (plus a kill-one-worker-mid-lease variant) and asserts the
# canonical documents are byte-identical (artifacts under dist-smoke/).
dist-smoke:
	./scripts/dist_smoke.sh

# dist-chaos-smoke: network-chaos + degraded-mode check. Re-runs the
# dist-smoke grid with deterministic network faults armed on both sides of
# the protocol (coordinator drops; worker drop/delay/reset/duplicate/
# reorder/throttle), a worker crash mid-lease, exponential-backoff retries
# and the per-worker circuit breaker, then a worker-cache rejoin pass —
# every canonical document must stay byte-identical to the local run
# (artifacts + cornucopia-netchaos/v1 report under dist-chaos-smoke/).
dist-chaos-smoke:
	./scripts/dist_chaos_smoke.sh

# obs-smoke: fleet-observability check. Runs the same grid on a local
# pool and through a 2-worker distributed campaign with the campaign
# journal, trace rings and canonical timeline armed, then asserts: both
# journals validate (obs validate), canonical journal and timeline are
# byte-identical across the two runs, /fleet and the fleet_* metric
# families are non-empty mid-campaign, obs report renders a postmortem,
# and obs diff accepts the committed BENCH_host.json against itself
# (artifacts under obs-smoke/).
obs-smoke:
	./scripts/obs_smoke.sh

# BENCH_host.json: the host-performance rig (internal/hostbench) — where
# the simulator spends real CPU, complementing the simulated-cycle
# documents. Runs every microbenchmark and campaign through cmd/hostbench
# and enforces the word kernel's speedup floors (sweep_kernel >= 3x,
# campaign >= 1.5x), the fast sim engine's (sim_campaign >= 3x) and the
# sparse memory representations' (heap_sweep >= 5x, fleet_setup >= 2x).
hostbench: BENCH_host.json
BENCH_host.json: FORCE
	$(GO) run ./cmd/hostbench -check -out $@

# hostbench-smoke: CI liveness for the rig — every benchmark body runs
# once (including the heap-scale million-frame sweep and the
# allocation-bound fleet-setup pair), and the differential suites pin
# that the word and granule kernels, the fast and classic sim engines,
# and the sparse and flat memory representations still produce identical
# simulated results.
hostbench-smoke:
	$(GO) test ./internal/hostbench -bench . -benchtime=1x -count=1
	$(GO) test ./internal/revoke -run TestWordKernelMatchesGranule -count=1
	$(GO) test ./internal/revoke -run TestFastEngineMatchesClassic -count=1
	$(GO) test ./internal/expt -run TestDocumentIdenticalAcrossKernels -count=1
	$(GO) test ./internal/expt -run TestDocumentIdenticalAcrossEngines -count=1
	$(GO) test ./internal/expt -run TestDocumentIdenticalAcrossMemPaths -count=1

# BENCH_sweep.json: one reduced-rep pass over every figure and table,
# emitted as the machine-readable cornucopia-sweep/v1 document for
# perf-trajectory tracking (~15 s of virtual workload per invocation).
sweep-bench: BENCH_sweep.json
BENCH_sweep.json: FORCE
	$(GO) run ./cmd/sweep -reps 1 -scale 256 -txs 1000 \
		-measure-ms 100 -warmup-ms 10 -out $@

.PHONY: FORCE
FORCE:
