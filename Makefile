GO ?= go

# Packages with no host concurrency (pure data structures and encoders):
# cheap enough to run under the race detector on every verify. The
# simulator packages (sim, kernel, revoke, …) hand off between goroutines
# one-at-a-time and are exercised by the plain `test` target.
RACE_PKGS = ./internal/bus ./internal/ca ./internal/metrics ./internal/shadow \
            ./internal/tmem ./internal/trace ./internal/vm

.PHONY: all build vet test race verify

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# verify is the tier-1 gate: everything must pass before a change lands.
verify: build vet test race
